"""Statistics-informed condition evaluation order.

``Transition.admits`` evaluates its condition set in declaration order
with short-circuiting, so the expected per-event cost is minimised by
evaluating the condition *least likely to pass* first.  Declaration
order is whatever the query author wrote; once a pattern has been
analyzed (or simply run) and its observed pass rates persisted in the
:class:`~repro.explain.stats.StatsStore`, :func:`ordered_plan` rebuilds
the automaton with each transition's conditions sorted by ascending
observed pass rate — the first real feedback loop from runtime back to
the plan ("Lazy Chain Automata" reorders by exactly these statistics).

Reordering is result-preserving: a transition fires iff *all* its
conditions hold, independent of evaluation order (conditions are pure
comparisons over immutable events).
"""

from __future__ import annotations

from typing import List, Optional

from ..automaton.automaton import SESAutomaton
from ..automaton.transitions import Transition
from ..plan.cache import as_plan
from ..plan.plan import PatternPlan
from ..plan.prefilter import FILTER_MODES
from .stats import stats_key, stats_store

__all__ = ["rank_conditions", "ordered_automaton", "ordered_plan"]


def _ranked_conditions(transition: Transition, fingerprint: str,
                       store) -> List:
    """The transition's conditions sorted by ascending observed pass
    rate (unknown rates sort last, original order preserved on ties)."""
    from .analyze import transition_label
    label = transition_label(transition)

    def key(indexed):
        index, condition = indexed
        rate = store.transition_condition_selectivity(
            fingerprint, label, repr(condition))
        return (rate if rate is not None else 1.0, index)

    return [condition for _, condition
            in sorted(enumerate(transition.conditions), key=key)]


def rank_conditions(pattern, store=None) -> dict:
    """``{transition label: [condition reprs in evaluation order]}`` for
    every transition whose statistics suggest an order differing from
    declaration order (empty dict when statistics are absent)."""
    from .analyze import transition_label
    store = stats_store() if store is None else store
    plan = as_plan(pattern)
    fingerprint = stats_key(plan.pattern)
    if fingerprint not in store:
        return {}
    changed = {}
    for transition in plan.automaton.transitions:
        ranked = _ranked_conditions(transition, fingerprint, store)
        if tuple(ranked) != transition.conditions:
            changed[transition_label(transition)] = [repr(c) for c in ranked]
    return changed


def ordered_automaton(automaton: SESAutomaton, pattern,
                      store=None) -> SESAutomaton:
    """A copy of ``automaton`` with each transition's conditions sorted
    by the statistics store's observed pass rates (ascending)."""
    store = stats_store() if store is None else store
    fingerprint = stats_key(pattern)
    transitions = [
        Transition(t.source, t.variable,
                   _ranked_conditions(t, fingerprint, store))
        for t in automaton.transitions
    ]
    return SESAutomaton(automaton.states, transitions, automaton.start,
                        automaton.accepting, automaton.tau)


def ordered_plan(pattern, store=None) -> PatternPlan:
    """A statistics-ordered twin of the plan for ``pattern``.

    Returns the original plan unchanged when the store has no record of
    the pattern (nothing to rank by).  The ordered plan is rebuilt — not
    cached — because its transition tables depend on mutable statistics;
    its fingerprint carries a ``:stats-order`` suffix so it never
    collides with the cached canonical plan.
    """
    store = stats_store() if store is None else store
    plan = as_plan(pattern)
    if stats_key(plan.pattern) not in store:
        return plan
    automaton = ordered_automaton(plan.automaton, plan.pattern, store)
    changed = rank_conditions(plan, store)
    rewrites = list(plan.rewrites)
    rewrites.append(
        f"stats-order: reordered conditions on {len(changed)} "
        f"transition(s) by observed selectivity")
    return PatternPlan(
        pattern=plan.pattern,
        automaton=automaton,
        fingerprint=plan.fingerprint + ":stats-order",
        optimizations=plan.optimizations,
        prefilters={mode: plan.prefilter(mode) for mode in FILTER_MODES},
        rewrites=tuple(rewrites),
    )


def condition_order_hint(pattern, store=None) -> Optional[List[str]]:
    """For the planner: the pattern's conditions ranked by ascending
    observed pass rate across all transitions, or ``None`` when the
    store has never seen the pattern."""
    store = stats_store() if store is None else store
    plan = as_plan(pattern)
    fingerprint = stats_key(plan.pattern)
    record = store.get(fingerprint)
    if record is None:
        return None

    def key(indexed):
        index, condition = indexed
        rate = store.condition_selectivity(fingerprint, repr(condition))
        return (rate if rate is not None else 1.0, index)

    return [repr(condition) for _, condition
            in sorted(enumerate(plan.pattern.conditions), key=key)]
