"""Static EXPLAIN: everything derivable from the compiled plan alone."""

from __future__ import annotations

from typing import Optional

from ..automaton.states import state_label
from ..complexity import analyze
from ..plan.cache import compile as compile_plan
from ..plan.cache import plan_cache
from ..plan.plan import PatternPlan
from ..plan.prefilter import FILTER_MODES
from .report import ExplainReport
from .stats import stats_key, stats_store

__all__ = ["explain"]


def _transition_entries(automaton) -> list:
    from .analyze import transition_label
    entries = []
    for transition in automaton.transitions:
        entries.append({
            "label": transition_label(transition),
            "source": state_label(transition.source),
            "variable": transition.variable.name,
            "target": state_label(transition.target),
            "is_loop": transition.is_loop,
            "conditions": [repr(c) for c in transition.conditions],
        })
    return entries


def explain(pattern, *, window: Optional[int] = None, relation=None,
            optimizations=None) -> ExplainReport:
    """Build the static :class:`~repro.explain.report.ExplainReport` for
    ``pattern`` (or an already compiled plan).

    Parameters
    ----------
    pattern:
        A :class:`~repro.core.pattern.SESPattern` or a compiled
        :class:`~repro.plan.plan.PatternPlan`.
    window / relation:
        The Section 4.4 complexity section needs the window size ``W``;
        pass it directly or supply a relation it is computed from.
        Omitted, the complexity section is left out.
    optimizations:
        Forwarded to :func:`repro.compile` when ``pattern`` is not
        already a plan.
    """
    cache = plan_cache()
    if isinstance(pattern, PatternPlan):
        plan = pattern
        cached = plan.fingerprint in cache
    else:
        # Provenance must be read *before* compiling: compile() inserts
        # on a miss, after which membership always reads True.
        from ..plan.fingerprint import pattern_fingerprint
        from ..plan.plan import normalise_optimizations
        fingerprint = pattern_fingerprint(
            pattern, normalise_optimizations(optimizations))
        cached = fingerprint in cache
        plan = compile_plan(pattern, optimizations=optimizations)

    automaton = plan.automaton
    if window is None and relation is not None:
        window_size = getattr(relation, "window_size", None)
        if callable(window_size):
            window = window_size(plan.pattern.tau)
    complexity = None
    if window is not None:
        report = analyze(plan.pattern, window)
        complexity = {
            "window": report.window,
            "cases": [case.name for case in report.cases],
            "set_bounds": list(report.set_bounds),
            "total_bound": report.total_bound,
            "mutually_exclusive": report.mutually_exclusive,
            "describe": report.describe(),
        }

    prefilter = {}
    for mode in FILTER_MODES:
        compiled = plan.prefilter(mode)
        prefilter[mode] = {
            "effective": compiled.is_effective,
            "predicates": [list(predicate)
                           for predicate in compiled.predicates],
        }

    return ExplainReport(
        fingerprint=plan.fingerprint,
        pattern=repr(plan.pattern),
        optimizations=list(plan.optimizations),
        rewrites=list(plan.rewrites),
        automaton={
            "states": len(automaton.states),
            "transitions": len(automaton.transitions),
            "start": state_label(automaton.start),
            "accepting": state_label(automaton.accepting),
            "tau": automaton.tau,
        },
        transitions=_transition_entries(automaton),
        prefilter=prefilter,
        complexity=complexity,
        cache={"cached": cached, **cache.stats()},
        statistics=stats_store().get(stats_key(plan.pattern)),
    )
