"""EXPLAIN ANALYZE: instrumented execution with per-transition counters.

The analyzed run executes a *shadow automaton* whose transitions are
:class:`CountingTransition` instances — same states, same conditions,
same semantics, but every :meth:`~CountingTransition.admits` call tallies
per-transition and per-condition evaluations, passes and wall time.  The
production :class:`~repro.automaton.transitions.Transition` and
:class:`~repro.automaton.executor.SESExecutor` are untouched, so the
analyze-off hot path stays branch-free by construction (gated by
``tests/test_explain.py::test_analyze_off_overhead``).

Counters reconcile exactly with the executor's own accounting: the sum
of per-transition passes equals ``stats.transitions_fired`` (and hence
the ``ses_transitions_fired_total`` counter), because the executor fires
precisely the transitions whose ``admits`` returned ``True``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..automaton.automaton import SESAutomaton
from ..automaton.executor import SESExecutor
from ..automaton.states import state_label
from ..automaton.transitions import Transition
from ..obs import Observability
from ..plan.cache import as_plan
from .report import ExplainReport
from .stats import stats_key, stats_store

__all__ = ["CountingTransition", "counting_automaton", "transition_label",
           "explain_analyze"]


def transition_label(transition: Transition) -> str:
    """Deterministic label of a transition (no conditions): the key the
    statistics store and the explain report file counters under."""
    return (f"{state_label(transition.source)} "
            f"--{transition.variable.name}--> "
            f"{state_label(transition.target)}")


class CountingTransition(Transition):
    """A :class:`Transition` whose ``admits`` tallies evaluations, passes
    and wall time, per transition and per condition (in check order).

    Semantics are identical to the base class: conditions are evaluated
    in declaration order with short-circuiting, constant conditions on
    the new event alone, variable conditions against every bound partner
    event (an unbound partner is vacuously satisfied).
    """

    __slots__ = ("evaluations", "passes", "seconds",
                 "condition_evaluations", "condition_passes")

    def __init__(self, source, variable, conditions=()):
        super().__init__(source, variable, conditions)
        self.evaluations = 0
        self.passes = 0
        self.seconds = 0.0
        self.condition_evaluations: List[int] = [0] * len(self.conditions)
        self.condition_passes: List[int] = [0] * len(self.conditions)

    def admits(self, event, buffer) -> bool:
        started = time.perf_counter()
        self.evaluations += 1
        admitted = True
        for index, (other, anchored) in enumerate(self._checks):
            self.condition_evaluations[index] += 1
            if other is None:
                passed = anchored.evaluate_events(event, event)
            else:
                passed = all(anchored.evaluate_events(event, partner)
                             for partner in buffer.events_of(other))
            if passed:
                self.condition_passes[index] += 1
            else:
                admitted = False
                break
        if admitted:
            self.passes += 1
        self.seconds += time.perf_counter() - started
        return admitted

    # ------------------------------------------------------------------
    # Counter export
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """This transition's tallies as a plain dict (selectivity is the
        observed pass rate; ``None`` until evaluated at least once)."""
        conditions = []
        for index, condition in enumerate(self.conditions):
            evaluations = self.condition_evaluations[index]
            passes = self.condition_passes[index]
            conditions.append({
                "condition": repr(condition),
                "evaluations": evaluations,
                "passes": passes,
                "selectivity": (passes / evaluations if evaluations
                                else None),
            })
        return {
            "label": transition_label(self),
            "source": state_label(self.source),
            "variable": self.variable.name,
            "target": state_label(self.target),
            "evaluations": self.evaluations,
            "passes": self.passes,
            "selectivity": (self.passes / self.evaluations
                            if self.evaluations else None),
            "seconds": self.seconds,
            "conditions": conditions,
        }


def counting_automaton(automaton: SESAutomaton
                       ) -> Tuple[SESAutomaton, List[CountingTransition]]:
    """A shadow of ``automaton`` with every transition replaced by a
    fresh :class:`CountingTransition` (declaration order preserved)."""
    transitions = [CountingTransition(t.source, t.variable, t.conditions)
                   for t in automaton.transitions]
    shadow = SESAutomaton(automaton.states, transitions, automaton.start,
                          automaton.accepting, automaton.tau)
    return shadow, transitions


def explain_analyze(pattern, relation, *, use_filter: bool = True,
                    filter_mode: str = "conjunctive",
                    selection: str = "paper", consume: str = "greedy",
                    observability: Optional[Observability] = None,
                    window: Optional[int] = None,
                    record_stats: bool = True,
                    store=None) -> ExplainReport:
    """Run ``pattern`` over ``relation`` with per-transition counters and
    return the annotated :class:`~repro.explain.report.ExplainReport`.

    Parameters
    ----------
    pattern:
        A pattern or a compiled :class:`~repro.plan.plan.PatternPlan`.
    relation:
        The events to run over (any iterable; an
        :class:`~repro.core.relation.EventRelation` also yields the
        window size for the complexity section).
    use_filter / filter_mode / selection / consume:
        Forwarded to the executor, matching :meth:`PatternPlan.match`.
    observability:
        Optional :class:`~repro.obs.Observability` bundle; a private one
        is used otherwise.  Executor counters (``ses_*``) publish into
        it either way, so analyze output reconciles with live metrics.
    record_stats:
        Feed the observed selectivities into the statistics store
        (``store``, defaulting to the process-global one), closing the
        runtime → planner loop.
    """
    from .explain import explain  # static section builder (cycle-free)

    plan = as_plan(pattern)
    events = list(relation)
    if window is None:
        window_size = getattr(relation, "window_size", None)
        if callable(window_size):
            window = window_size(plan.pattern.tau)
    report = explain(plan, window=window)

    obs = Observability() if observability is None else observability
    shadow, transitions = counting_automaton(plan.automaton)
    event_filter = plan.filter_handle(filter_mode) if use_filter else None
    executor = SESExecutor(shadow, event_filter=event_filter,
                           selection=selection, consume_mode=consume,
                           obs=obs)
    started = time.perf_counter()
    result = executor.run(events)
    wall_seconds = time.perf_counter() - started

    stats = result.stats
    counters = [t.counters() for t in transitions]
    fired = sum(t.passes for t in transitions)
    evaluated = sum(t.evaluations for t in transitions)
    prefilter_selectivity = (1.0 - stats.events_processed / stats.events_read
                             if stats.events_read else None)
    report.analysis = {
        "events": stats.events_read,
        "events_filtered": stats.events_filtered,
        "events_processed": stats.events_processed,
        "matches": len(result.matches),
        "accepted_buffers": stats.accepted_buffers,
        "wall_seconds": wall_seconds,
        "instances_created": stats.instances_created,
        "instances_expired": stats.expired_instances,
        "branchings": stats.branchings,
        "max_omega": stats.max_simultaneous_instances,
        "transitions_fired": stats.transitions_fired,
        "transition_evaluations": evaluated,
        "transition_passes": fired,
        "reconciles": fired == stats.transitions_fired,
        "prefilter_selectivity": prefilter_selectivity,
        "selection": selection,
        "consume": consume,
        "use_filter": use_filter,
        "transitions": counters,
    }

    if record_stats:
        target = stats_store() if store is None else store
        condition_counts: dict = {}
        transition_counts: dict = {}
        for record in counters:
            per_condition = {
                entry["condition"]: {"evaluations": entry["evaluations"],
                                     "passes": entry["passes"]}
                for entry in record["conditions"]
            }
            transition_counts[record["label"]] = {
                "evaluations": record["evaluations"],
                "passes": record["passes"],
                "seconds": record["seconds"],
                "conditions": per_condition,
            }
            for text, counts in per_condition.items():
                slot = condition_counts.setdefault(
                    text, {"evaluations": 0, "passes": 0})
                slot["evaluations"] += counts["evaluations"]
                slot["passes"] += counts["passes"]
        target.observe(
            stats_key(plan.pattern),
            events=stats.events_read,
            matches=len(result.matches),
            filter_seen=stats.events_read,
            filter_admitted=stats.events_processed,
            conditions=condition_counts,
            transitions=transition_counts,
        )
    return report
