"""Persistent per-pattern runtime statistics (the planner's feedback loop).

:class:`StatsStore` accumulates *observed* quantities per pattern
fingerprint — condition pass rates, per-transition fan-out, prefilter
selectivity, run/event/match cardinalities — and persists them as a JSON
sidecar so later runs (and the planner) can consult what earlier runs
measured.  The store is process-global like
:class:`~repro.plan.cache.PlanCache`; worker processes ship
:meth:`StatsStore.snapshot` dicts across the process boundary and the
parent folds them back in with :meth:`StatsStore.merge_snapshot`, the
same wire-format idiom the metrics registry uses.

Statistics are keyed by the *optimization-independent* pattern
fingerprint (:func:`stats_key`), so a pattern observed under one
optimization set informs plans compiled under another.

Environment knobs
-----------------
``REPRO_STATS_PATH``
    Path of the JSON sidecar.  When set, the global store loads it on
    first access and saves after every :meth:`StatsStore.observe`.
``REPRO_STATS_DISABLE``
    Any non-empty value makes :meth:`StatsStore.observe` a no-op on the
    global store (reads still work).

File format (also the :meth:`StatsStore.snapshot` wire format)::

    {
      "version": 1,
      "patterns": {
        "<fingerprint>": {
          "runs": 3, "events": 1200, "matches": 7,
          "filter_seen": 1200, "filter_admitted": 230,
          "conditions": {
            "c.L = 'C'": {"evaluations": 1200, "passes": 90}
          },
          "transitions": {
            "{} --c--> {c}": {
              "evaluations": 1200, "passes": 90, "seconds": 0.004,
              "conditions": {"c.L = 'C'": {"evaluations": 1200,
                                           "passes": 90}}
            }
          }
        }
      }
    }
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from ..plan.fingerprint import pattern_fingerprint

__all__ = ["StatsStore", "stats_key", "stats_store", "clear_stats_store",
           "set_stats_path", "STATS_FORMAT_VERSION"]

#: Version stamp of the sidecar / wire format.
STATS_FORMAT_VERSION = 1

#: Environment variable naming the JSON sidecar of the global store.
STATS_PATH_ENV = "REPRO_STATS_PATH"

#: Environment variable disabling observation on the global store.
STATS_DISABLE_ENV = "REPRO_STATS_DISABLE"


def stats_key(pattern) -> str:
    """The statistics key for ``pattern``: its canonical fingerprint
    computed *without* optimizations, so every compilation of an equal
    pattern shares one statistics record."""
    return pattern_fingerprint(pattern, ())


def _empty_record() -> dict:
    return {"runs": 0, "events": 0, "matches": 0,
            "filter_seen": 0, "filter_admitted": 0,
            "conditions": {}, "transitions": {}}


def _merge_counts(into: dict, incoming: dict) -> None:
    """Add ``{"evaluations", "passes"}`` counts into ``into`` in place."""
    into["evaluations"] = (into.get("evaluations", 0)
                           + int(incoming.get("evaluations", 0)))
    into["passes"] = into.get("passes", 0) + int(incoming.get("passes", 0))


def _merge_record(into: dict, incoming: dict) -> None:
    for field in ("runs", "events", "matches", "filter_seen",
                  "filter_admitted"):
        into[field] = into.get(field, 0) + int(incoming.get(field, 0))
    for text, counts in incoming.get("conditions", {}).items():
        _merge_counts(into["conditions"].setdefault(text, {}), counts)
    for label, t_record in incoming.get("transitions", {}).items():
        slot = into["transitions"].setdefault(
            label, {"evaluations": 0, "passes": 0, "seconds": 0.0,
                    "conditions": {}})
        _merge_counts(slot, t_record)
        slot["seconds"] = (slot.get("seconds", 0.0)
                           + float(t_record.get("seconds", 0.0)))
        for text, counts in t_record.get("conditions", {}).items():
            _merge_counts(slot["conditions"].setdefault(text, {}), counts)


def _pass_rate(counts: Optional[dict]) -> Optional[float]:
    if not counts:
        return None
    evaluations = counts.get("evaluations", 0)
    if not evaluations:
        return None
    return counts.get("passes", 0) / evaluations


class StatsStore:
    """Accumulated runtime statistics, keyed by pattern fingerprint.

    Thread-safe; every accessor copies, so callers never see a record
    mutate under them.  ``path`` (optional) names a JSON sidecar that is
    loaded on construction and re-saved after every :meth:`observe`.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 autosave: bool = True):
        self._lock = threading.RLock()
        self._patterns: Dict[str, dict] = {}
        self._path: Optional[Path] = None if path is None else Path(path)
        self._autosave = autosave
        self.disabled = False
        if self._path is not None and self._path.exists():
            self.load(self._path)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, fingerprint: str, *, runs: int = 1, events: int = 0,
                matches: int = 0, filter_seen: int = 0,
                filter_admitted: int = 0,
                conditions: Optional[Dict[str, dict]] = None,
                transitions: Optional[Dict[str, dict]] = None) -> None:
        """Fold one run's observations into the record for
        ``fingerprint``.  ``conditions`` maps condition text to
        ``{"evaluations", "passes"}``; ``transitions`` maps transition
        labels to ``{"evaluations", "passes", "seconds", "conditions"}``.
        """
        if self.disabled:
            return
        incoming = {
            "runs": runs, "events": events, "matches": matches,
            "filter_seen": filter_seen, "filter_admitted": filter_admitted,
            "conditions": conditions or {},
            "transitions": transitions or {},
        }
        with self._lock:
            record = self._patterns.setdefault(fingerprint, _empty_record())
            _merge_record(record, incoming)
            if self._autosave and self._path is not None:
                self._save_locked(self._path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[dict]:
        """A deep copy of the record for ``fingerprint``, or ``None``."""
        with self._lock:
            record = self._patterns.get(fingerprint)
            return None if record is None else json.loads(json.dumps(record))

    def fingerprints(self):
        """The recorded fingerprints, sorted."""
        with self._lock:
            return sorted(self._patterns)

    def condition_selectivity(self, fingerprint: str,
                              text: str) -> Optional[float]:
        """Observed pass rate of condition ``text`` (aggregated over all
        transitions), or ``None`` when never observed."""
        with self._lock:
            record = self._patterns.get(fingerprint)
            if record is None:
                return None
            return _pass_rate(record["conditions"].get(text))

    def transition_condition_selectivity(self, fingerprint: str, label: str,
                                         text: str) -> Optional[float]:
        """Observed pass rate of ``text`` on the transition ``label``,
        falling back to the pattern-wide aggregate."""
        with self._lock:
            record = self._patterns.get(fingerprint)
            if record is None:
                return None
            t_record = record["transitions"].get(label)
            if t_record is not None:
                rate = _pass_rate(t_record["conditions"].get(text))
                if rate is not None:
                    return rate
            return _pass_rate(record["conditions"].get(text))

    def prefilter_selectivity(self, fingerprint: str) -> Optional[float]:
        """Observed fraction of events the prefilter dropped."""
        with self._lock:
            record = self._patterns.get(fingerprint)
            if record is None or not record.get("filter_seen"):
                return None
            return 1.0 - record["filter_admitted"] / record["filter_seen"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._patterns)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._patterns

    # ------------------------------------------------------------------
    # Wire format and persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The full store as a plain dict (wire and sidecar format)."""
        with self._lock:
            return {"version": STATS_FORMAT_VERSION,
                    "patterns": json.loads(json.dumps(self._patterns))}

    def merge_snapshot(self, snapshot: Optional[dict]) -> "StatsStore":
        """Fold a :meth:`snapshot` (from a worker process or an earlier
        run) into this store; unknown versions are rejected."""
        if not snapshot:
            return self
        version = snapshot.get("version", STATS_FORMAT_VERSION)
        if version != STATS_FORMAT_VERSION:
            raise ValueError(
                f"unknown stats snapshot version {version!r}; expected "
                f"{STATS_FORMAT_VERSION}")
        with self._lock:
            for fingerprint, incoming in snapshot.get("patterns",
                                                      {}).items():
                record = self._patterns.setdefault(fingerprint,
                                                   _empty_record())
                _merge_record(record, incoming)
        return self

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the sidecar (atomically) and return its path."""
        with self._lock:
            target = Path(path) if path is not None else self._path
            if target is None:
                raise ValueError("no sidecar path configured")
            return self._save_locked(target)

    def _save_locked(self, target: Path) -> Path:
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(self.snapshot_unlocked(), indent=2,
                                  sort_keys=True) + "\n", encoding="utf-8")
        tmp.replace(target)
        return target

    def snapshot_unlocked(self) -> dict:
        return {"version": STATS_FORMAT_VERSION,
                "patterns": self._patterns}

    def load(self, path: Union[str, Path]) -> "StatsStore":
        """Merge a sidecar file into this store (missing file is a no-op)."""
        path = Path(path)
        if not path.exists():
            return self
        return self.merge_snapshot(
            json.loads(path.read_text(encoding="utf-8")))

    def clear(self) -> None:
        """Drop every record (the sidecar is rewritten on next save)."""
        with self._lock:
            self._patterns.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (f"StatsStore({len(self._patterns)} pattern(s), "
                    f"path={self._path})")


# ----------------------------------------------------------------------
# The process-global store
# ----------------------------------------------------------------------
_GLOBAL_STORE: Optional[StatsStore] = None
_GLOBAL_LOCK = threading.Lock()


def stats_store() -> StatsStore:
    """The process-global statistics store (sidecar from
    ``REPRO_STATS_PATH``, lazily created)."""
    global _GLOBAL_STORE
    with _GLOBAL_LOCK:
        if _GLOBAL_STORE is None:
            path = os.environ.get(STATS_PATH_ENV) or None
            _GLOBAL_STORE = StatsStore(path=path)
            _GLOBAL_STORE.disabled = bool(
                os.environ.get(STATS_DISABLE_ENV))
        return _GLOBAL_STORE


def clear_stats_store() -> None:
    """Reset the process-global store (drops records and the sidecar
    binding; the next :func:`stats_store` call re-reads the env knobs)."""
    global _GLOBAL_STORE
    with _GLOBAL_LOCK:
        _GLOBAL_STORE = None


def set_stats_path(path: Optional[Union[str, Path]],
                   autosave: bool = True) -> StatsStore:
    """Bind the global store to a sidecar at runtime (loads it if it
    exists; existing in-memory records are kept)."""
    store = stats_store()
    with store._lock:
        store._path = None if path is None else Path(path)
        store._autosave = autosave
        if store._path is not None and store._path.exists():
            store.load(store._path)
    return store
