"""Cost-informed query planning for SES patterns.

The paper's evaluation shows that the best execution configuration
depends on measurable properties of the query and the data: the event
filter pays off when many events are irrelevant (Experiment 3), state
indexing captures the same savings when the filter cannot be applied
(ablation X2), partitioned execution dominates when the pattern
equi-joins all variables on one attribute, and Theorems 1–3 predict the
instance population from the window size.  :func:`plan_query` encodes
those findings, in the spirit of cost-based CEP processors like ZStream
(related work):

1. analyse the pattern (complexity case per set, partition attribute,
   filter effectiveness);
2. sample the relation (size, window size W, filter selectivity);
3. choose a filter mode and an executor, recording the rationale;
4. return an executable, explainable :class:`QueryPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from ..automaton.executor import MatchResult
from ..automaton.filtering import EventFilter
from ..automaton.optimizations import (IndexedExecutor, PartitionedMatcher,
                                       partition_attribute)
from ..complexity import ComplexityReport, analyze
from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.relation import EventRelation

__all__ = ["DataProfile", "QueryPlan", "profile_relation", "plan_query"]

#: Executor choices a plan can make.
EXECUTORS = ("plain", "indexed", "partitioned")

#: Sample size used when profiling a relation.
_SAMPLE = 2000

#: Below this filter selectivity (fraction of events dropped) the filter
#: is considered not worth its per-event cost.
_MIN_FILTER_SELECTIVITY = 0.15

#: Instance populations above this trigger the partitioning preference.
_PARTITION_BOUND_THRESHOLD = 10_000


@dataclass
class DataProfile:
    """Measured properties of an event relation for one pattern."""

    #: Total number of events.
    events: int
    #: Window size W (Definition 5) for the pattern's τ.
    window: int
    #: Fraction of sampled events the pattern's filter would drop.
    filter_selectivity: float

    def describe(self) -> str:
        return (f"{self.events} events, W = {self.window}, "
                f"filter would drop {self.filter_selectivity:.0%}")


def profile_relation(pattern: SESPattern,
                     relation: EventRelation,
                     sample: int = _SAMPLE) -> DataProfile:
    """Measure the :class:`DataProfile` of ``relation`` for ``pattern``.

    The filter selectivity is estimated on the first ``sample`` events;
    the window size is computed exactly (O(n log n)).
    """
    event_filter = EventFilter(pattern)
    sampled = relation.events[:sample]
    if sampled and event_filter.is_effective:
        dropped = sum(1 for e in sampled if not event_filter.admits(e))
        selectivity = dropped / len(sampled)
    else:
        selectivity = 0.0
    return DataProfile(
        events=len(relation),
        window=relation.window_size(pattern.tau),
        filter_selectivity=selectivity,
    )


@dataclass
class QueryPlan:
    """An executable plan for one SES pattern over profiled data."""

    pattern: SESPattern
    #: One of :data:`EXECUTORS`.
    executor: str
    #: Whether to apply the Section 4.5 pre-filter.
    use_filter: bool
    #: Partition attribute (``executor == "partitioned"`` only).
    partition_on: Optional[str]
    #: The Section 4.4 analysis underlying the choice.
    complexity: ComplexityReport
    #: The measured data profile the plan was built from.
    profile: DataProfile
    #: Human-readable decisions, in the order they were taken.
    rationale: List[str] = field(default_factory=list)
    #: Result selection forwarded to the executor.
    selection: str = "paper"
    #: Conditions ranked by observed pass rate (statistics store), or
    #: ``None`` when the pattern has never been observed.
    condition_order: Optional[List[str]] = None
    #: Aggregation spec for ``SELECT`` queries; ``None`` enumerates.
    aggregate: Optional[object] = None

    def execute(self, relation: Union[EventRelation, Iterable[Event]]
                ) -> MatchResult:
        """Run the plan over ``relation`` (compiled via the plan cache)."""
        if self.aggregate is not None:
            # Aggregation folds inside the executor, so the indexed /
            # partitioned choices collapse onto the unified plan.match
            # dispatch (which merges per-partition partials losslessly).
            from ..plan.cache import compile as compile_plan
            plan = compile_plan(self.pattern, aggregate=self.aggregate)
            return plan.match(
                relation, use_filter=self.use_filter,
                selection=self.selection,
                partition_by=(self.partition_on
                              if self.executor == "partitioned" else None))
        from ..plan.cache import as_plan
        plan = as_plan(self.pattern)
        if self.condition_order is not None and self.executor == "plain":
            from ..explain.order import ordered_plan
            plan = ordered_plan(plan)
        if self.executor == "partitioned":
            matcher = PartitionedMatcher(plan,
                                         partition_by=self.partition_on,
                                         use_filter=self.use_filter,
                                         selection=self.selection)
            return matcher.run(relation)
        if self.executor == "indexed":
            event_filter = (plan.filter_handle() if self.use_filter
                            else None)
            runner = IndexedExecutor(plan.automaton,
                                     event_filter=event_filter,
                                     selection=self.selection)
            return runner.run(relation)
        return plan.match(relation, use_filter=self.use_filter,
                          selection=self.selection)

    def explain(self) -> str:
        """Multi-line plan description (like EXPLAIN in a database)."""
        lines = [
            f"plan for {self.pattern!r}",
            f"  data: {self.profile.describe()}",
            f"  executor: {self.executor}"
            + (f" on {self.partition_on!r}" if self.partition_on else ""),
            f"  event filter: {'on' if self.use_filter else 'off'}",
        ]
        if self.aggregate is not None:
            lines.append("  aggregation: "
                         + ", ".join(self.aggregate.labels)
                         + " (folded incrementally, no materialisation)")
        if self.condition_order is not None:
            lines.append("  condition order (by observed selectivity): "
                         + "; ".join(self.condition_order))
        for line in self.complexity.describe().splitlines():
            lines.append(f"  {line}")
        lines.append("  rationale:")
        for reason in self.rationale:
            lines.append(f"    - {reason}")
        return "\n".join(lines)


def plan_query(pattern: SESPattern,
               relation: EventRelation,
               exact: bool = True,
               selection: str = "paper",
               aggregate=None) -> QueryPlan:
    """Build a :class:`QueryPlan` for ``pattern`` over ``relation``.

    Parameters
    ----------
    pattern:
        The SES pattern to plan for.
    relation:
        The data (profiled, not yet executed).
    exact:
        Keep exactly the paper's Algorithm 1 semantics.  When ``False``
        the planner may pick partitioned execution, which accepts a
        superset of Algorithm 1's buffers (it is immune to cross-partition
        greedy hijacking; see :mod:`repro.automaton.optimizations`).
    selection:
        Result selection forwarded to the chosen executor.
    aggregate:
        Optional :class:`~repro.agg.spec.AggregateSpec`; the plan folds
        matches incrementally instead of enumerating them.
    """
    profile = profile_relation(pattern, relation)
    complexity = analyze(pattern, profile.window)
    rationale: List[str] = []

    # Surface static pattern problems up front (a plan for a pattern that
    # can never match should say so).
    from ..core.diagnostics import diagnose
    for finding in diagnose(pattern):
        if finding.severity in ("error", "warning"):
            rationale.append(f"lint {finding.severity}: {finding.code} — "
                             f"{finding.message}")

    use_filter = profile.filter_selectivity >= _MIN_FILTER_SELECTIVITY
    if use_filter:
        rationale.append(
            f"filter drops {profile.filter_selectivity:.0%} of events "
            f"(>= {_MIN_FILTER_SELECTIVITY:.0%}) -> pre-filter on "
            "(Experiment 3)")
    else:
        rationale.append(
            f"filter would drop only {profile.filter_selectivity:.0%} of "
            "events -> pre-filter off")

    partition_on = partition_attribute(pattern)
    executor = "plain"
    if partition_on is not None and not exact:
        if complexity.total_bound > _PARTITION_BOUND_THRESHOLD:
            executor = "partitioned"
            rationale.append(
                f"pattern equi-joins all variables on {partition_on!r} and "
                f"the instance bound is large -> partitioned execution "
                "(superset recall; exact=False)")
    if executor == "plain" and partition_on is not None and not exact:
        rationale.append(
            f"partitionable on {partition_on!r} but instance bound is small "
            "-> not worth the split")
    if executor == "plain" and partition_on is not None and exact:
        rationale.append(
            f"partitionable on {partition_on!r} but exact Algorithm 1 "
            "semantics requested -> partitioning skipped")

    if executor == "plain" and not use_filter:
        executor = "indexed"
        rationale.append(
            "no effective pre-filter -> state-indexed instances recover "
            "the constant-condition savings (ablation X2)")
    if executor == "plain":
        rationale.append("filtered plain Algorithm 1 is the best exact choice")

    if aggregate is not None:
        rationale.append(
            "aggregation query -> matches fold into per-instance "
            "registers, enumeration and materialisation are skipped "
            "entirely")

    from ..explain.order import condition_order_hint
    condition_order = condition_order_hint(pattern)
    if condition_order is not None:
        rationale.append(
            "statistics store has observed selectivities for this pattern "
            "-> conditions evaluate most-selective-first")

    if not complexity.mutually_exclusive:
        worst = max(complexity.set_bounds)
        if worst > _PARTITION_BOUND_THRESHOLD:
            rationale.append(
                "warning: non-exclusive variables with a large per-start "
                f"bound ({worst if worst < 10**9 else 'huge'}); expect a "
                "large instance population (Theorems 2-3)")

    return QueryPlan(
        pattern=pattern,
        executor=executor,
        use_filter=use_filter,
        partition_on=partition_on if executor == "partitioned" else None,
        complexity=complexity,
        profile=profile,
        rationale=rationale,
        selection=selection,
        condition_order=condition_order,
        aggregate=aggregate,
    )
