"""Cost-informed query planning (ZStream-style, using Theorems 1-3)."""

from .planner import DataProfile, QueryPlan, plan_query, profile_relation

__all__ = ["DataProfile", "QueryPlan", "plan_query", "profile_relation"]
