"""Substitutions: bindings of event variables to events (Section 3.2).

A substitution ``γ = {v1/e1, ..., vn/en}`` is a finite set of bindings.  It
contains exactly one binding per singleton variable and one or more bindings
per group variable.  A substitution with several bindings for a group
variable *decomposes* into single-binding substitutions, one per combination
of bindings; instantiating Θ evaluates every condition against every
decomposed combination.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

from .conditions import Condition
from .events import Event
from .pattern import SESPattern
from .variables import Variable

__all__ = ["Binding", "Substitution"]

#: A single binding ``v/e``.
Binding = Tuple[Variable, Event]


class Substitution:
    """An immutable set of bindings ``{v1/e1, ..., vn/en}``.

    Construct from an iterable of ``(variable, event)`` pairs, or use
    :meth:`extend` to derive a new substitution with one more binding.
    """

    __slots__ = ("_bindings", "_by_var", "_hash")

    def __init__(self, bindings: Iterable[Binding] = ()):
        pairs = []
        by_var: Dict[Variable, List[Event]] = {}
        seen = set()
        for variable, event in bindings:
            key = (variable, event)
            if key in seen:
                continue
            seen.add(key)
            pairs.append(key)
            by_var.setdefault(variable, []).append(event)
        for variable, events in by_var.items():
            if variable.is_singleton and len(events) > 1:
                raise ValueError(
                    f"singleton variable {variable!r} bound to "
                    f"{len(events)} events"
                )
            events.sort(key=lambda e: e.ts)
        self._bindings: FrozenSet[Binding] = frozenset(pairs)
        self._by_var: Dict[Variable, Tuple[Event, ...]] = {
            v: tuple(es) for v, es in by_var.items()
        }
        self._hash = hash(self._bindings)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def extend(self, variable: Variable, event: Event) -> "Substitution":
        """Return a new substitution with the binding ``variable/event`` added."""
        return Substitution(list(self._bindings) + [(variable, event)])

    @classmethod
    def from_mapping(cls, mapping: Mapping[Variable, Iterable[Event]]
                     ) -> "Substitution":
        """Build from ``{variable: [events...]}``."""
        pairs: List[Binding] = []
        for variable, events in mapping.items():
            if isinstance(events, Event):
                events = [events]
            for e in events:
                pairs.append((variable, e))
        return cls(pairs)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def bindings(self) -> FrozenSet[Binding]:
        """The bindings as a frozen set of ``(variable, event)`` pairs."""
        return self._bindings

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The bound variables."""
        return frozenset(self._by_var)

    def events_of(self, variable: Variable) -> Tuple[Event, ...]:
        """Events bound to ``variable`` in chronological order (may be empty)."""
        return self._by_var.get(variable, ())

    def events(self) -> Tuple[Event, ...]:
        """All bound events in chronological order (with duplicates removed)."""
        uniq = {e for _, e in self._bindings}
        return tuple(sorted(uniq, key=lambda e: e.ts))

    def __len__(self) -> int:
        return len(self._bindings)

    def __bool__(self) -> bool:
        return bool(self._bindings)

    def __contains__(self, binding: Binding) -> bool:
        return binding in self._bindings

    def __iter__(self) -> Iterator[Binding]:
        return iter(sorted(self._bindings,
                           key=lambda b: (b[1].ts, b[0].name, b[1].eid or "")))

    # ------------------------------------------------------------------
    # Temporal structure
    # ------------------------------------------------------------------
    def min_ts(self):
        """Timestamp of the chronologically first bound event (``minT``)."""
        if not self._bindings:
            raise ValueError("empty substitution has no minimal timestamp")
        return min(e.ts for _, e in self._bindings)

    def max_ts(self):
        """Timestamp of the chronologically last bound event."""
        if not self._bindings:
            raise ValueError("empty substitution has no maximal timestamp")
        return max(e.ts for _, e in self._bindings)

    def span(self):
        """Duration between the first and the last bound event."""
        return self.max_ts() - self.min_ts()

    def min_binding(self) -> Binding:
        """The binding with the earliest event (``minT(γ)`` of the paper)."""
        if not self._bindings:
            raise ValueError("empty substitution has no minimal binding")
        return min(self._bindings,
                   key=lambda b: (b[1].ts, b[0].name, b[1].eid or ""))

    # ------------------------------------------------------------------
    # Decomposition and instantiation (Section 3.2)
    # ------------------------------------------------------------------
    def decompose(self) -> Iterator["Substitution"]:
        """Yield single-binding-per-variable substitutions.

        A substitution with multiple bindings for group variables
        decomposes into one substitution per combination of bindings with
        distinct event variables.
        """
        variables = sorted(self._by_var, key=lambda v: v.name)
        choices = [self._by_var[v] for v in variables]
        for combo in itertools.product(*choices):
            yield Substitution(zip(variables, combo))

    def satisfies(self, conditions: Iterable[Condition]) -> bool:
        """True iff every condition holds on every decomposed combination.

        This is the instantiation ``Θγ`` of the paper: each condition is
        replaced by one instance per decomposed substitution, and all
        instances must be satisfied.  Only conditions whose variables are
        all bound are checked (partial substitutions arise during search);
        use :meth:`is_total_for` to confirm completeness.
        """
        conditions = list(conditions)
        for condition in conditions:
            involved = sorted(condition.variables, key=lambda v: v.name)
            if any(v not in self._by_var for v in involved):
                continue
            pools = [self._by_var[v] for v in involved]
            for combo in itertools.product(*pools):
                assignment = dict(zip(involved, combo))
                if not condition.evaluate(assignment):
                    return False
        return True

    def is_total_for(self, pattern: SESPattern) -> bool:
        """True iff every variable of ``pattern`` has at least one binding."""
        return all(v in self._by_var for v in pattern.variables)

    # ------------------------------------------------------------------
    # Set relations (used by Definition 2, condition 5)
    # ------------------------------------------------------------------
    def issubset(self, other: "Substitution") -> bool:
        """True iff every binding of ``self`` is also in ``other``."""
        return self._bindings <= other._bindings

    def __le__(self, other: "Substitution") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "Substitution") -> bool:
        return self._bindings < other._bindings

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{variable!r}/{event.eid if event.eid else repr(event)}"
            for variable, event in self
        )
        return "{" + parts + "}"
