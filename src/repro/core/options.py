"""Canonical option spellings shared by every matcher entry point.

Historically each matcher grew its own keyword names: ``consume_mode``
on the batch matchers, ``obs`` everywhere, ``attribute`` on the
partitioned matchers, ``shards`` on the stream sharder.  The unified
vocabulary is

================  =============================================
canonical         replaces
================  =============================================
``consume=``      ``consume_mode=``
``observability=``  ``obs=``
``partition_by=``   ``attribute=``
``workers=``        ``shards=``
================  =============================================

The old spellings keep working through :func:`resolve_option`, which
emits exactly one :class:`DeprecationWarning` per use and rejects
conflicting double spellings like a duplicate keyword argument would.
"""

from __future__ import annotations

import warnings

__all__ = ["resolve_option", "warn_deprecated"]

#: Entry points that already warned this process (one warning per owner,
#: however many times the deprecated surface is used).
_WARNED: set = set()


def warn_deprecated(owner: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``owner``.

    Used by the legacy entry points (``repro.match``, ``repro.Matcher``)
    kept as shims over :func:`repro.query`: the first use warns with the
    suggested replacement, later uses stay silent so a hot loop over the
    old API does not flood stderr.
    """
    if owner in _WARNED:
        return
    _WARNED.add(owner)
    warnings.warn(f"{owner} is deprecated; use {replacement}",
                  DeprecationWarning, stacklevel=3)


def resolve_option(owner: str, name: str, value, deprecated: str,
                   deprecated_value, default=None):
    """Resolve the canonical option ``name`` against a deprecated alias.

    ``None`` means "not given" for both spellings; the resolved value
    falls back to ``default`` when neither was passed.  Passing the old
    alias warns once; passing both spellings raises :class:`TypeError`.
    """
    if deprecated_value is None:
        return default if value is None else value
    warnings.warn(
        f"{owner}: keyword '{deprecated}=' is deprecated, use '{name}='",
        DeprecationWarning, stacklevel=3)
    if value is not None:
        raise TypeError(
            f"{owner}: got both '{name}=' and deprecated '{deprecated}='")
    return deprecated_value
