"""Time domains: mapping real-world time onto the discrete domain T.

The paper assumes a discrete, totally ordered time domain (Section 3.1) —
calendar days and hours in the running example.  Matching itself only
needs integers, but applications have datetimes; a :class:`TimeDomain`
converts between the two and scales durations, so patterns can be
written with real-world units::

    domain = HourDomain(epoch=datetime(2026, 7, 1))
    event = Event(ts=domain.to_ticks(datetime(2026, 7, 3, 9)), ...)
    pattern = SESPattern(..., tau=domain.duration(timedelta(days=11)))
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Union

__all__ = ["TimeDomain", "SecondDomain", "MinuteDomain", "HourDomain",
           "DayDomain"]


class TimeDomain:
    """A discrete time domain anchored at an epoch with a fixed tick size.

    Parameters
    ----------
    epoch:
        The datetime mapped to tick 0.
    tick:
        The duration of one tick (a :class:`~datetime.timedelta`).
    """

    def __init__(self, epoch: datetime, tick: timedelta):
        if tick <= timedelta(0):
            raise ValueError("tick must be a positive duration")
        self.epoch = epoch
        self.tick = tick

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_ticks(self, when: datetime) -> int:
        """The tick containing ``when`` (floor division from the epoch).

        Raises :class:`ValueError` for datetimes before the epoch — the
        domain is not defined there, and silently emitting negative ticks
        tends to hide data errors.
        """
        delta = when - self.epoch
        if delta < timedelta(0):
            raise ValueError(f"{when} precedes the domain epoch {self.epoch}")
        return delta // self.tick

    def to_datetime(self, ticks: int) -> datetime:
        """The start of tick ``ticks``."""
        return self.epoch + ticks * self.tick

    def duration(self, delta: Union[timedelta, int]) -> int:
        """A duration in ticks (for a pattern's τ).

        Accepts a :class:`~datetime.timedelta` (converted, floor) or an
        int (returned unchanged, for convenience).
        """
        if isinstance(delta, int):
            return delta
        if delta < timedelta(0):
            raise ValueError("durations must be non-negative")
        return delta // self.tick

    def __repr__(self) -> str:
        return f"{type(self).__name__}(epoch={self.epoch.isoformat()})"


class SecondDomain(TimeDomain):
    """One tick per second."""

    def __init__(self, epoch: datetime):
        super().__init__(epoch, timedelta(seconds=1))


class MinuteDomain(TimeDomain):
    """One tick per minute."""

    def __init__(self, epoch: datetime):
        super().__init__(epoch, timedelta(minutes=1))


class HourDomain(TimeDomain):
    """One tick per hour — the paper's running-example domain."""

    def __init__(self, epoch: datetime):
        super().__init__(epoch, timedelta(hours=1))


class DayDomain(TimeDomain):
    """One tick per day."""

    def __init__(self, epoch: datetime):
        super().__init__(epoch, timedelta(days=1))
