"""Event relations: totally ordered collections of events.

The paper assumes the timestamp attribute ``T`` defines a total order among
the events of a relation (Section 3.1).  Real data may contain ties (the
duplicated data sets D2–D5 of Section 5.1 duplicate events *in place*), so
:class:`EventRelation` keeps a stable, deterministic order: primarily by
timestamp, secondarily by insertion order.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .events import Event, EventSchema

__all__ = ["EventRelation"]


class EventRelation:
    """A finite event relation ordered by occurrence time.

    Parameters
    ----------
    events:
        Initial events.  They are sorted by timestamp (stable).
    schema:
        Optional :class:`EventSchema`.  When given, every inserted event is
        validated against it.
    name:
        Optional relation name for diagnostics.
    """

    def __init__(self, events: Iterable[Event] = (),
                 schema: Optional[EventSchema] = None,
                 name: str = "Event"):
        self.schema = schema
        self.name = name
        self._events: List[Event] = []
        self.extend(events)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        """Append an event; it must not precede the current last event."""
        self._check(event)
        if self._events and event.ts < self._events[-1].ts:
            raise ValueError(
                f"append would violate time order: {event!r} precedes "
                f"{self._events[-1]!r}; use insert() instead"
            )
        self._events.append(event)

    def insert(self, event: Event) -> None:
        """Insert an event at its chronological position (stable on ties)."""
        self._check(event)
        keys = [e.ts for e in self._events]
        pos = bisect.bisect_right(keys, event.ts)
        self._events.insert(pos, event)

    def extend(self, events: Iterable[Event]) -> None:
        """Add many events, re-sorting once (stable)."""
        events = list(events)
        for e in events:
            self._check(e)
        self._events.extend(events)
        self._events.sort(key=lambda e: e.ts)

    def _check(self, event: Event) -> None:
        if not isinstance(event, Event):
            raise TypeError(f"expected Event, got {type(event).__name__}")
        if self.schema is not None:
            self.schema.validate(event.attributes)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            rel = EventRelation(schema=self.schema, name=self.name)
            rel._events = self._events[idx]
            return rel
        return self._events[idx]

    def __contains__(self, event: Event) -> bool:
        return event in self._events

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRelation):
            return NotImplemented
        return self._events == other._events

    @property
    def events(self) -> Tuple[Event, ...]:
        """All events in chronological order."""
        return tuple(self._events)

    def timespan(self) -> Tuple[Any, Any]:
        """Return ``(first_ts, last_ts)``; raises on an empty relation."""
        if not self._events:
            raise ValueError("empty relation has no timespan")
        return self._events[0].ts, self._events[-1].ts

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Event], bool]) -> "EventRelation":
        """Return a new relation with the events satisfying ``predicate``."""
        rel = EventRelation(schema=self.schema, name=self.name)
        rel._events = [e for e in self._events if predicate(e)]
        return rel

    def between(self, start: Any, end: Any) -> "EventRelation":
        """Events with ``start <= T <= end`` (a closed time slice)."""
        keys = [e.ts for e in self._events]
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_right(keys, end)
        rel = EventRelation(schema=self.schema, name=self.name)
        rel._events = self._events[lo:hi]
        return rel

    def partition_by(self, attribute: str) -> Dict[Any, "EventRelation"]:
        """Split into per-value relations on ``attribute`` (e.g. patient ID)."""
        parts: Dict[Any, EventRelation] = {}
        for e in self._events:
            key = e[attribute]
            part = parts.get(key)
            if part is None:
                part = EventRelation(schema=self.schema,
                                     name=f"{self.name}[{attribute}={key!r}]")
                parts[key] = part
            part._events.append(e)
        return parts

    def duplicated(self, factor: int) -> "EventRelation":
        """Return the relation with each event repeated ``factor`` times.

        This reproduces the construction of data sets D2–D5 (Section 5.1):
        duplicates share the original timestamp, so the window size ``W``
        scales linearly with ``factor``.  Duplicates get distinct ``eid``
        suffixes so that they remain distinguishable events.
        """
        if factor < 1:
            raise ValueError("duplication factor must be >= 1")
        rel = EventRelation(schema=self.schema,
                            name=f"{self.name}x{factor}" if factor > 1 else self.name)
        out: List[Event] = []
        for e in self._events:
            out.append(e)
            for i in range(1, factor):
                eid = f"{e.eid}#{i}" if e.eid else None
                out.append(e.replace(eid=eid) if eid else
                           Event(ts=e.ts, attrs=e.attributes))
        out.sort(key=lambda ev: ev.ts)
        rel._events = out
        return rel

    def window_size(self, tau: Any) -> int:
        """Window size ``W`` (Definition 5 of the paper).

        The maximal number of events in a time window of width ``tau``
        sliding over the relation event-by-event.  A window anchored at
        event ``e`` covers all events ``e'`` with ``e.T <= e'.T <= e.T +
        tau``.
        """
        if tau < 0:
            raise ValueError("tau must be non-negative")
        n = len(self._events)
        if n == 0:
            return 0
        keys = [e.ts for e in self._events]
        best = 0
        for lo in range(n):
            hi = bisect.bisect_right(keys, keys[lo] + tau)
            if hi - lo > best:
                best = hi - lo
        return best

    def __repr__(self) -> str:
        return f"EventRelation({self.name!r}, {len(self._events)} events)"
