"""High-level matching API.

:class:`Matcher` compiles a SES pattern into an automaton once and can then
run it over many relations; :func:`match` is the one-shot convenience
entry point most applications need::

    from repro import SESPattern, match

    pattern = SESPattern(
        sets=[["c", "p+", "d"], ["b"]],
        conditions=["c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'",
                    "c.ID = p.ID", "c.ID = d.ID", "d.ID = b.ID"],
        tau=264,
    )
    result = match(pattern, relation)
    for substitution in result:
        print(substitution)
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..automaton.automaton import SESAutomaton
from ..automaton.builder import build_automaton
from ..automaton.executor import MatchResult, SESExecutor
from ..automaton.filtering import EventFilter
from .events import Event
from .pattern import SESPattern
from .relation import EventRelation

__all__ = ["Matcher", "match"]


class Matcher:
    """A compiled SES pattern, ready to run over event relations.

    Parameters
    ----------
    pattern:
        The SES pattern to compile.
    use_filter:
        Apply the Section 4.5 event pre-filter (default ``True``).
    filter_mode:
        ``"conjunctive"`` (sound, default) or ``"paper"`` (the filter
        exactly as published); see :class:`~repro.automaton.filtering.EventFilter`.
    selection:
        Result selection policy; ``"paper"`` (default) yields the paper's
        intended results (Definition 2 conditions 4–5 plus non-overlap),
        ``"all-starts"`` keeps overlapping matches, ``"accepted"`` the raw
        accepted buffers.
    consume_mode:
        ``"greedy"`` (default) is the paper's skip-till-next-match
        Algorithm 2; ``"exhaustive"`` also keeps the pre-consumption
        instance alive, making results exactly Definition 2's declarative
        semantics at exponential worst-case cost.
    obs:
        Optional :class:`repro.obs.Observability` bundle; when given,
        executors report per-stage span timings, the |Ω| gauge, and
        latency/lifetime histograms through it.
    """

    def __init__(self, pattern: SESPattern, use_filter: bool = True,
                 filter_mode: str = "conjunctive",
                 selection: str = "paper",
                 consume_mode: str = "greedy",
                 obs=None):
        self.pattern = pattern
        self.automaton: SESAutomaton = build_automaton(pattern)
        self.event_filter: Optional[EventFilter] = (
            EventFilter(pattern, mode=filter_mode) if use_filter else None
        )
        self.selection = selection
        self.consume_mode = consume_mode
        self.obs = obs

    def run(self, relation: Union[EventRelation, Iterable[Event]]) -> MatchResult:
        """Match the compiled pattern against ``relation``."""
        return self.executor().run(relation)

    def executor(self, obs=None, record_history: bool = False,
                 history_max_samples: Optional[int] = None) -> SESExecutor:
        """A fresh incremental executor (for streaming use).

        ``obs`` overrides the matcher-level bundle for this executor
        (per-partition streaming hands each executor its own).
        """
        return SESExecutor(self.automaton, event_filter=self.event_filter,
                           selection=self.selection,
                           consume_mode=self.consume_mode,
                           obs=self.obs if obs is None else obs,
                           record_history=record_history,
                           history_max_samples=history_max_samples)

    def __repr__(self) -> str:
        return f"Matcher({self.pattern!r})"


def match(pattern: SESPattern,
          relation: Union[EventRelation, Iterable[Event]],
          use_filter: bool = True,
          filter_mode: str = "conjunctive",
          selection: str = "paper",
          consume_mode: str = "greedy",
          obs=None) -> MatchResult:
    """Match ``pattern`` against ``relation`` and return a :class:`MatchResult`."""
    matcher = Matcher(pattern, use_filter=use_filter, filter_mode=filter_mode,
                      selection=selection, consume_mode=consume_mode, obs=obs)
    return matcher.run(relation)
