"""High-level matching API.

The documented entry point is :func:`repro.compile`, which returns a
cached :class:`~repro.plan.plan.PatternPlan`::

    import repro

    plan = repro.compile(pattern)      # compile once (process-global cache)
    result = plan.match(relation)      # run many

:class:`Matcher` and :func:`match` remain as thin wrappers over the plan
layer — they compile through the same cache, so the historical style::

    result = match(pattern, relation)
    for substitution in result:
        print(substitution)

no longer rebuilds the automaton per call either.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..automaton.automaton import SESAutomaton
from ..automaton.executor import MatchResult, SESExecutor
from ..plan.cache import compile as compile_plan
from ..plan.plan import PatternPlan
from .events import Event
from .options import resolve_option, warn_deprecated
from .pattern import SESPattern
from .relation import EventRelation

__all__ = ["Matcher", "match"]


class Matcher:
    """A compiled SES pattern, ready to run over event relations.

    A thin wrapper over :class:`~repro.plan.plan.PatternPlan`: the
    constructor compiles through the process-global plan cache (or
    accepts an already compiled plan) and keeps one scalar filter handle
    for its executors.

    Parameters
    ----------
    pattern:
        The SES pattern to compile, or a :class:`PatternPlan`.
    use_filter:
        Apply the Section 4.5 event pre-filter (default ``True``).
    filter_mode:
        ``"conjunctive"`` (sound, default) or ``"paper"`` (the filter
        exactly as published); see :class:`~repro.automaton.filtering.EventFilter`.
    selection:
        Result selection policy; ``"paper"`` (default) yields the paper's
        intended results (Definition 2 conditions 4–5 plus non-overlap),
        ``"all-starts"`` keeps overlapping matches, ``"accepted"`` the raw
        accepted buffers.
    consume:
        ``"greedy"`` (default) is the paper's skip-till-next-match
        Algorithm 2; ``"exhaustive"`` also keeps the pre-consumption
        instance alive, making results exactly Definition 2's declarative
        semantics at exponential worst-case cost.  (``consume_mode=`` is
        the deprecated spelling.)
    observability:
        Optional :class:`repro.obs.Observability` bundle; when given,
        executors report per-stage span timings, the |Ω| gauge, and
        latency/lifetime histograms through it.  (``obs=`` is the
        deprecated spelling.)
    """

    def __init__(self, pattern: Union[SESPattern, PatternPlan],
                 use_filter: bool = True,
                 filter_mode: str = "conjunctive",
                 selection: str = "paper",
                 consume: Optional[str] = None,
                 observability=None,
                 consume_mode: Optional[str] = None,
                 obs=None):
        warn_deprecated(
            "repro.Matcher",
            "repro.compile(pattern).match(...) or repro.query(...)")
        consume = resolve_option("Matcher", "consume", consume,
                                 "consume_mode", consume_mode,
                                 default="greedy")
        observability = resolve_option("Matcher", "observability",
                                       observability, "obs", obs)
        self.plan: PatternPlan = compile_plan(pattern,
                                              observability=observability)
        self.pattern: SESPattern = self.plan.pattern
        self.automaton: SESAutomaton = self.plan.automaton
        self.event_filter = (
            self.plan.filter_handle(filter_mode) if use_filter else None
        )
        self.selection = selection
        self.consume_mode = consume
        self.obs = observability

    def run(self, relation: Union[EventRelation, Iterable[Event]]) -> MatchResult:
        """Match the compiled pattern against ``relation``."""
        return self.executor().run(relation)

    def executor(self, obs=None, record_history: bool = False,
                 history_max_samples: Optional[int] = None,
                 flight=None) -> SESExecutor:
        """A fresh incremental executor (for streaming use).

        ``obs`` overrides the matcher-level bundle for this executor
        (per-partition streaming hands each executor its own);
        ``flight`` attaches a :class:`repro.obs.flight.FlightRecorder`.
        """
        if flight is not None:
            flight.note_plan(self.plan.fingerprint)
        return SESExecutor(self.automaton, event_filter=self.event_filter,
                           selection=self.selection,
                           consume_mode=self.consume_mode,
                           obs=self.obs if obs is None else obs,
                           record_history=record_history,
                           history_max_samples=history_max_samples,
                           flight=flight)

    def __repr__(self) -> str:
        return f"Matcher({self.pattern!r})"


def match(pattern: Union[SESPattern, PatternPlan],
          relation: Union[EventRelation, Iterable[Event]],
          use_filter: bool = True,
          filter_mode: str = "conjunctive",
          selection: str = "paper",
          consume: Optional[str] = None,
          observability=None,
          consume_mode: Optional[str] = None,
          obs=None) -> MatchResult:
    """Match ``pattern`` against ``relation`` and return a :class:`MatchResult`.

    One-shot convenience over ``repro.compile(pattern).match(relation)``;
    repeated calls with an equal pattern hit the plan cache.

    Deprecated in favour of :func:`repro.query`, which additionally
    accepts query text (including ``SELECT`` aggregation) and returns
    the typed :data:`~repro.agg.result.Result` union.
    """
    warn_deprecated("repro.match", "repro.query(...)")
    consume = resolve_option("match", "consume", consume,
                             "consume_mode", consume_mode, default="greedy")
    observability = resolve_option("match", "observability", observability,
                                   "obs", obs)
    plan = compile_plan(pattern, observability=observability)
    return plan.match(relation, use_filter=use_filter,
                      filter_mode=filter_mode, selection=selection,
                      consume=consume, observability=observability)
