"""Event model for sequenced event set pattern matching.

The paper (Section 3.1) represents an event as a tuple with schema
``E = (A1, ..., Al, T)`` where ``A1..Al`` are non-temporal attributes and
``T`` is a temporal attribute over a discrete, totally ordered time domain.

This module provides:

* :class:`Attribute` — a named, optionally typed attribute declaration.
* :class:`EventSchema` — the relation schema ``(A1, ..., Al, T)``.
* :class:`Event` — an immutable event tuple with attribute access and a
  dedicated timestamp.

Timestamps are plain integers by default (e.g. hours since an epoch, as in
the paper's chemotherapy example); any totally ordered, subtractable values
work as long as a whole relation uses one domain.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

__all__ = ["Attribute", "EventSchema", "Event", "SchemaError"]

#: Conventional name of the temporal attribute, as used throughout the paper.
TIME_ATTRIBUTE = "T"


class SchemaError(ValueError):
    """Raised when an event does not conform to its declared schema."""


class Attribute:
    """Declaration of a non-temporal event attribute.

    Parameters
    ----------
    name:
        Attribute name (e.g. ``"ID"``, ``"L"``, ``"V"``).
    dtype:
        Optional Python type used to validate and coerce values.  ``None``
        accepts any value unchanged.
    """

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: Optional[type] = None):
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        if name == TIME_ATTRIBUTE:
            raise SchemaError(
                f"{TIME_ATTRIBUTE!r} is reserved for the temporal attribute"
            )
        self.name = name
        self.dtype = dtype

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to this attribute's type.

        Raises :class:`SchemaError` if the value cannot be coerced.
        """
        if self.dtype is None or isinstance(value, self.dtype):
            return value
        try:
            return self.dtype(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.__name__}, "
                f"got {value!r}"
            ) from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.dtype == other.dtype

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))

    def __repr__(self) -> str:
        if self.dtype is None:
            return f"Attribute({self.name!r})"
        return f"Attribute({self.name!r}, {self.dtype.__name__})"


class EventSchema:
    """Schema ``E = (A1, ..., Al, T)`` of an event relation.

    The temporal attribute ``T`` is implicit and always present; only the
    non-temporal attributes are declared.

    Parameters
    ----------
    attributes:
        Iterable of :class:`Attribute` instances or plain attribute names.
    name:
        Optional schema (relation) name, used in diagnostics.
    """

    __slots__ = ("name", "_attributes", "_by_name")

    def __init__(self, attributes: Iterable, name: str = "Event"):
        attrs = []
        for a in attributes:
            if isinstance(a, Attribute):
                attrs.append(a)
            elif isinstance(a, str):
                attrs.append(Attribute(a))
            else:
                raise SchemaError(f"invalid attribute declaration: {a!r}")
        self.name = name
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self._attributes}
        if len(self._by_name) != len(self._attributes):
            raise SchemaError("duplicate attribute names in schema")

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The declared non-temporal attributes, in order."""
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the non-temporal attributes, in order."""
        return tuple(a.name for a in self._attributes)

    def __contains__(self, name: str) -> bool:
        return name == TIME_ATTRIBUTE or name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no attribute {name!r}") from None

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def validate(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a mapping of attribute values against this schema.

        Returns a new dict with values coerced per attribute type.  Unknown
        attributes and missing attributes raise :class:`SchemaError`.
        """
        out: Dict[str, Any] = {}
        for attr in self._attributes:
            if attr.name not in values:
                raise SchemaError(
                    f"missing attribute {attr.name!r} for schema {self.name!r}"
                )
            out[attr.name] = attr.validate(values[attr.name])
        extra = set(values) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"unknown attributes {sorted(extra)!r} for schema {self.name!r}"
            )
        return out

    def __repr__(self) -> str:
        names = ", ".join(self.attribute_names)
        return f"EventSchema({self.name!r}: {names}, T)"


class Event:
    """An immutable event tuple.

    An event carries a set of non-temporal attribute values, an integer (or
    otherwise totally ordered) timestamp ``ts`` for the temporal attribute
    ``T``, and an optional identifier ``eid`` used for display (``e1`` ...
    ``e14`` in the paper's Figure 1).

    Attribute values are read with item access: ``event["L"]``.  The
    timestamp is also reachable as ``event["T"]``.
    """

    __slots__ = ("eid", "ts", "_attrs", "_hash")

    def __init__(self, ts: Any, attrs: Optional[Mapping[str, Any]] = None,
                 eid: Optional[str] = None, **kwargs: Any):
        merged: Dict[str, Any] = dict(attrs) if attrs else {}
        merged.update(kwargs)
        if TIME_ATTRIBUTE in merged:
            raise SchemaError(
                f"pass the timestamp via the 'ts' parameter, not {TIME_ATTRIBUTE!r}"
            )
        self.ts = ts
        self.eid = eid
        self._attrs = merged
        self._hash = hash((ts, eid, frozenset(merged.items())))

    def __getitem__(self, name: str) -> Any:
        if name == TIME_ATTRIBUTE:
            return self.ts
        try:
            return self._attrs[name]
        except KeyError:
            raise KeyError(
                f"event {self.eid or ''} has no attribute {name!r}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        """Return the attribute value, or ``default`` if absent."""
        if name == TIME_ATTRIBUTE:
            return self.ts
        return self._attrs.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name == TIME_ATTRIBUTE or name in self._attrs

    @property
    def attributes(self) -> Mapping[str, Any]:
        """Read-only view of the non-temporal attribute values."""
        return dict(self._attrs)

    def keys(self) -> Iterator[str]:
        """Iterate over non-temporal attribute names."""
        return iter(self._attrs.keys())

    def replace(self, ts: Any = None, eid: Optional[str] = None,
                **attrs: Any) -> "Event":
        """Return a copy with the given fields replaced."""
        new_attrs = dict(self._attrs)
        new_attrs.update(attrs)
        return Event(
            ts=self.ts if ts is None else ts,
            attrs=new_attrs,
            eid=self.eid if eid is None else eid,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.ts == other.ts and self.eid == other.eid
                and self._attrs == other._attrs)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        label = self.eid or "e?"
        parts = ", ".join(f"{k}={v!r}" for k, v in self._attrs.items())
        return f"Event<{label} T={self.ts} {parts}>"
