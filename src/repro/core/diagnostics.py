"""Static pattern diagnostics — a linter for SES patterns.

Several pattern-authoring mistakes are statically detectable and either
make a pattern unmatchable or degrade the engine silently:

* a variable whose own constant conditions conflict can never bind
  (the pattern never matches);
* ``τ = 0`` with several event set patterns can never satisfy the strict
  inter-set order;
* an equality join graph that is connected but not transitively closed
  exposes the greedy engine to hijacking (see docs/semantics.md) —
  :func:`repro.core.rewrite.close_equality_joins` fixes it;
* a variable without constant conditions disables the paper-mode event
  filter and weakens the default one;
* non-exclusive sets with group variables put the pattern in Theorem 3's
  high-complexity class.

:func:`diagnose` returns structured findings; severity ``"error"`` means
the pattern cannot match at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..complexity.bounds import (ComplexityCase, classify_set,
                                 conditions_conflict)
from .pattern import SESPattern
from .rewrite import implied_equalities

__all__ = ["Diagnostic", "diagnose"]

#: Severities, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the pattern linter."""

    #: Stable machine-readable code (kebab-case).
    code: str
    #: ``"error"`` (cannot match), ``"warning"``, or ``"info"``.
    severity: str
    #: Human-readable explanation with the affected names inline.
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def _severity_rank(diagnostic: Diagnostic) -> Tuple[int, str]:
    return (SEVERITIES.index(diagnostic.severity), diagnostic.code)


def diagnose(pattern: SESPattern) -> List[Diagnostic]:
    """Lint ``pattern``; findings are ordered errors → warnings → infos."""
    findings: List[Diagnostic] = []
    findings.extend(_check_unsatisfiable_variables(pattern))
    findings.extend(_check_zero_tau_multi_set(pattern))
    findings.extend(_check_open_join_graph(pattern))
    findings.extend(_check_unconstrained_variables(pattern))
    findings.extend(_check_heavy_sets(pattern))
    findings.sort(key=_severity_rank)
    return findings


def _check_unsatisfiable_variables(pattern: SESPattern) -> List[Diagnostic]:
    findings = []
    for variable in sorted(pattern.variables):
        constants = pattern.constant_conditions(variable)
        for i, a in enumerate(constants):
            for b in constants[i + 1:]:
                if conditions_conflict(a, b):
                    findings.append(Diagnostic(
                        code="unsatisfiable-variable",
                        severity="error",
                        message=(f"variable {variable!r} can never bind: "
                                 f"{a!r} conflicts with {b!r}"),
                    ))
    return findings


def _check_zero_tau_multi_set(pattern: SESPattern) -> List[Diagnostic]:
    if pattern.tau == 0 and len(pattern) > 1:
        return [Diagnostic(
            code="zero-window-multi-set",
            severity="error",
            message=(f"tau = 0 with {len(pattern)} event set patterns: the "
                     "strict order between sets requires strictly later "
                     "timestamps, which a zero-width window cannot contain"),
        )]
    return []


def _check_open_join_graph(pattern: SESPattern) -> List[Diagnostic]:
    implied = implied_equalities(pattern)
    if not implied:
        return []
    rendered = ", ".join(repr(c) for c in implied[:4])
    if len(implied) > 4:
        rendered += ", …"
    return [Diagnostic(
        code="open-join-graph",
        severity="warning",
        message=(f"{len(implied)} equality condition(s) are implied but not "
                 f"stated ({rendered}); under greedy skip-till-next-match "
                 "the unchecked transitions can be hijacked by unrelated "
                 "events — apply repro.core.rewrite.close_equality_joins"),
    )]


def _check_unconstrained_variables(pattern: SESPattern) -> List[Diagnostic]:
    findings = []
    for variable in sorted(pattern.variables):
        if not pattern.constant_conditions(variable):
            findings.append(Diagnostic(
                code="unconstrained-variable",
                severity="info",
                message=(f"variable {variable!r} has no constant condition; "
                         "the paper-mode event filter disables itself and "
                         "the default filter cannot prune for it"),
            ))
    return findings


def _check_heavy_sets(pattern: SESPattern) -> List[Diagnostic]:
    findings = []
    for i in range(len(pattern)):
        case = classify_set(pattern, i)
        if case is ComplexityCase.SINGLE_GROUP:
            findings.append(Diagnostic(
                code="group-in-nonexclusive-set",
                severity="warning",
                message=(f"event set pattern V{i + 1} mixes a group variable "
                         "with non-exclusive conditions: instance growth is "
                         "polynomial in the window size (Theorem 3, k=1)"),
            ))
        elif case is ComplexityCase.MULTI_GROUP:
            findings.append(Diagnostic(
                code="multiple-groups-in-nonexclusive-set",
                severity="warning",
                message=(f"event set pattern V{i + 1} has several group "
                         "variables with non-exclusive conditions: instance "
                         "growth is exponential in the window size "
                         "(Theorem 3, k>1)"),
            ))
    return findings
