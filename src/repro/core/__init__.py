"""Core model: events, relations, patterns, substitutions, semantics."""

from .conditions import Attr, Condition, Const, attr, const, parse_condition
from .diagnostics import Diagnostic, diagnose
from .events import Attribute, Event, EventSchema, SchemaError
from .matcher import Matcher, match
from .pattern import PatternError, SESPattern
from .relation import EventRelation
from .rewrite import close_equality_joins, implied_equalities
from .substitution import Binding, Substitution
from .timedomain import (DayDomain, HourDomain, MinuteDomain, SecondDomain,
                         TimeDomain)
from .variables import Variable, group, parse_variable, var

__all__ = [
    "Attr", "Attribute", "Binding", "Condition", "Const", "Diagnostic",
    "Event",
    "EventRelation", "EventSchema", "Matcher", "PatternError", "SESPattern",
    "DayDomain", "HourDomain", "MinuteDomain", "SchemaError", "SecondDomain",
    "Substitution", "TimeDomain", "Variable", "attr",
    "close_equality_joins", "const", "diagnose", "group",
    "implied_equalities",
    "match", "parse_condition", "parse_variable", "var",
]
