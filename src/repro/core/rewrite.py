"""Semantics-preserving pattern rewrites.

:func:`close_equality_joins` adds the transitive closure of a pattern's
equality join conditions.  The added conditions are *implied* (equality
is transitive), so the declarative Definition 2 semantics is unchanged —
but the operational Algorithm 1 gets strictly better: a transition that
previously carried no checkable join (because its partner sat two hops
away in the join graph) now carries the implied direct condition, so
greedy instances can no longer be hijacked by events of unrelated
entities through that transition (see docs/semantics.md, "join hijack").

:func:`implied_equalities` exposes the raw closure for diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .conditions import Attr, Condition
from .pattern import SESPattern
from .variables import Variable

__all__ = ["implied_equalities", "close_equality_joins"]

#: A node of the equality graph: (variable, attribute).
_Node = Tuple[Variable, str]


def _equality_components(pattern: SESPattern) -> List[Set[_Node]]:
    """Connected components of the ``v.A = v'.A'`` equality graph."""
    parent: Dict[_Node, _Node] = {}

    def find(node: _Node) -> _Node:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: _Node, b: _Node) -> None:
        parent[find(a)] = find(b)

    for condition in pattern.conditions:
        if condition.is_constant or condition.op != "=":
            continue
        left = (condition.left.variable, condition.left.attribute)
        right = (condition.right.variable, condition.right.attribute)  # type: ignore[union-attr]
        union(left, right)

    components: Dict[_Node, Set[_Node]] = {}
    for node in list(parent):
        components.setdefault(find(node), set()).add(node)
    return [c for c in components.values() if len(c) > 1]


def implied_equalities(pattern: SESPattern) -> List[Condition]:
    """Equality conditions implied by transitivity but absent from Θ.

    For every connected component of the equality graph, all node pairs
    are equal; the returned list contains one condition per missing pair
    (deterministic order).
    """
    existing: Set[frozenset] = set()
    for condition in pattern.conditions:
        if not condition.is_constant and condition.op == "=":
            existing.add(frozenset([
                (condition.left.variable, condition.left.attribute),
                (condition.right.variable, condition.right.attribute),  # type: ignore[union-attr]
            ]))
    implied: List[Condition] = []
    for component in _equality_components(pattern):
        nodes = sorted(component, key=lambda n: (n[0].name, n[1]))
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if a[0] == b[0] and a[1] == b[1]:
                    continue
                if frozenset([a, b]) in existing:
                    continue
                implied.append(Condition(Attr(a[0], a[1]), "=",
                                         Attr(b[0], b[1])))
    return implied


def close_equality_joins(pattern: SESPattern) -> SESPattern:
    """Return the pattern with its equality joins transitively closed.

    The result matches exactly the same substitutions under Definition 2
    (the added conditions are implied), and under the greedy Algorithm 1
    it matches a **superset** of the original pattern's results: more
    transitions carry checkable conditions, so fewer instances are
    hijacked into dead ends.  Self-equalities (same variable and
    attribute) are never added.

    Idempotent: closing a closed pattern returns an equal pattern.
    """
    implied = implied_equalities(pattern)
    if not implied:
        return pattern
    return SESPattern(
        sets=[sorted(vs) for vs in pattern.sets],
        conditions=list(pattern.conditions) + implied,
        tau=pattern.tau,
    )
