"""Declarative matching semantics (Definition 2 of the paper).

This module implements the five conditions of Definition 2:

1. every condition in Θ is satisfied by every decomposed instantiation;
2. events bound to ``Vi`` occur strictly before events bound to ``Vi+1``;
3. all bound events fit within a window of width τ;
4. *skip-till-next-match*: the match never skipped an event it could have
   used (see :func:`satisfies_next_match` for the precise witness rule —
   the condition as printed in the paper is ambiguous and its literal
   reading contradicts the paper's own worked example);
5. *MAXIMAL/greedy*: a match is not strictly contained in another candidate
   starting at the same instant.

:func:`enumerate_candidates` exhaustively enumerates the set Γ of
substitutions satisfying conditions 1–3 and :func:`matching_substitutions`
filters Γ with :func:`select_matches` (conditions 4–5 plus the result
selection policy).  The enumeration is exponential by design — this is the
*reference oracle* used to validate the automaton engine on small inputs,
not a production matcher.  ``select_matches`` itself is shared with every
engine so that all engines report results under one semantics.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from .events import Event
from .pattern import SESPattern
from .relation import EventRelation
from .substitution import Substitution
from .variables import Variable

__all__ = [
    "satisfies_conditions",
    "satisfies_order",
    "satisfies_window",
    "is_candidate",
    "enumerate_candidates",
    "satisfies_next_match",
    "satisfies_maximality",
    "select_matches",
    "matching_substitutions",
]


# ----------------------------------------------------------------------
# Conditions 1–3
# ----------------------------------------------------------------------
def satisfies_conditions(gamma: Substitution, pattern: SESPattern) -> bool:
    """Condition 1: Θγ is satisfied (all decomposed instantiations hold)."""
    return gamma.satisfies(pattern.conditions)


def satisfies_order(gamma: Substitution, pattern: SESPattern) -> bool:
    """Condition 2: events of ``Vi`` strictly precede events of ``Vi+1``."""
    for i in range(len(pattern) - 1):
        earlier = [e for v in pattern.sets[i] for e in gamma.events_of(v)]
        later = [e for v in pattern.sets[i + 1] for e in gamma.events_of(v)]
        if not earlier or not later:
            continue
        if max(e.ts for e in earlier) >= min(e.ts for e in later):
            return False
    return True


def satisfies_window(gamma: Substitution, pattern: SESPattern) -> bool:
    """Condition 3: all bound events occur within a window of width τ."""
    if not gamma:
        return True
    return gamma.span() <= pattern.tau


def is_candidate(gamma: Substitution, pattern: SESPattern) -> bool:
    """True iff ``gamma`` is total for the pattern and satisfies 1–3."""
    return (gamma.is_total_for(pattern)
            and satisfies_conditions(gamma, pattern)
            and satisfies_order(gamma, pattern)
            and satisfies_window(gamma, pattern))


# ----------------------------------------------------------------------
# Enumeration of Γ
# ----------------------------------------------------------------------
def _variable_order(pattern: SESPattern) -> List[Variable]:
    """Deterministic variable order: by set index, then by name."""
    out: List[Variable] = []
    for vs in pattern.sets:
        out.extend(sorted(vs, key=lambda v: v.name))
    return out


def _candidate_events(pattern: SESPattern, variable: Variable,
                      events: Sequence[Event]) -> List[Event]:
    """Events satisfying every constant condition on ``variable``."""
    constant = pattern.constant_conditions(variable)
    return [e for e in events
            if all(c.evaluate_events(e) for c in constant)]


def enumerate_candidates(pattern: SESPattern,
                         relation: Iterable[Event],
                         max_group_bindings: int = 6) -> List[Substitution]:
    """Enumerate Γ: all total substitutions satisfying conditions 1–3.

    ``max_group_bindings`` caps how many events a single group variable may
    bind during enumeration; it bounds the (exponential) search and is far
    above anything the test relations need.
    """
    events = list(relation)
    order = _variable_order(pattern)
    pools = {v: _candidate_events(pattern, v, events) for v in order}

    results: List[Substitution] = []

    def assign(idx: int, gamma: Substitution, used: FrozenSet[Event]) -> None:
        if idx == len(order):
            if is_candidate(gamma, pattern):
                results.append(gamma)
            return
        variable = order[idx]
        pool = [e for e in pools[variable] if e not in used]
        if variable.is_singleton:
            choices: Iterable[Tuple[Event, ...]] = ((e,) for e in pool)
        else:
            choices = itertools.chain.from_iterable(
                itertools.combinations(pool, k)
                for k in range(1, min(len(pool), max_group_bindings) + 1)
            )
        for events_choice in choices:
            extended = gamma
            for e in events_choice:
                extended = extended.extend(variable, e)
            # Prune early: conditions and window can only get harder to
            # satisfy as bindings accumulate; order is checked at the end
            # because later sets are still unbound.
            if not satisfies_window(extended, pattern):
                continue
            if not satisfies_conditions(extended, pattern):
                continue
            assign(idx + 1, extended, used | set(events_choice))

    assign(0, Substitution(), frozenset())
    return results


# ----------------------------------------------------------------------
# Conditions 4–5
# ----------------------------------------------------------------------
def satisfies_next_match(gamma: Substitution,
                         candidates: Sequence[Substitution]) -> bool:
    """Condition 4 (skip-till-next-match) of Definition 2.

    For every ordered pair of bindings ``v/e, v'/e'`` in ``gamma`` there
    must be no candidate substitution that *shares the earlier binding
    v/e* and binds ``v'`` to an event strictly between ``e`` and ``e'``
    that ``gamma`` left *unconsumed* — i.e. the match skipped an event it
    could have used for ``v'``.

    .. note::
       Definition 2 as printed quantifies over *any* ``γ' ∈ Γ`` and only
       requires the in-between *binding* to be absent from γ.  Read
       literally this is inconsistent with the paper's own intended
       results for Query Q1 in two ways: (a) a completely unrelated
       candidate (e.g. one for a different patient) may act as witness,
       and (b) a candidate that binds the same events with the *roles
       swapped* (``{c/s3, d/s8, p+/s9}`` vs. ``{c/s3, p+/s8, d/s9}``)
       would disqualify its twin, mutually annihilating all matches of
       patterns whose variables are interchangeable.  Two refinements fix
       both while preserving the paper's worked examples (Example 4's
       rejected substitutions are still rejected, the intended matches
       survive): the witness must share the earlier binding of the pair,
       and the in-between event must not be bound to *any* variable of
       ``gamma`` — skip-till-next-match is about skipped events, not
       about alternative role assignments.
    """
    bindings = list(gamma.bindings)
    consumed = {e for _, e in bindings}
    for v, e in bindings:
        for v_prime, e_prime in bindings:
            if not e.ts < e_prime.ts:
                continue
            for witness in candidates:
                if (v, e) not in witness:
                    continue
                for e_between in witness.events_of(v_prime):
                    if (e.ts < e_between.ts < e_prime.ts
                            and e_between not in consumed):
                        return False
    return True


def satisfies_maximality(gamma: Substitution,
                         candidates: Sequence[Substitution]) -> bool:
    """Condition 5 (MAXIMAL/greedy) of Definition 2.

    ``gamma`` must not be a strict subset of a candidate with the same
    minimal timestamp.
    """
    start = gamma.min_ts()
    for other in candidates:
        if other is gamma or other == gamma:
            continue
        if other.min_ts() == start and gamma < other:
            return False
    return True


def _sort_key(gamma: Substitution):
    """Total deterministic result order: start time, larger matches first,
    then bindings lexicographically (so different engines surviving the
    same candidate pool report the same representative)."""
    bindings = tuple(sorted(
        (e.ts, v.name, v.is_group, e.eid or "") for v, e in gamma.bindings
    ))
    return (gamma.min_ts(), -len(gamma), bindings)


def select_matches(candidates: Sequence[Substitution],
                   overlap: str = "suppress") -> List[Substitution]:
    """Apply Definition 2's conditions 4–5 plus result-set selection.

    ``candidates`` are substitutions already known to satisfy conditions
    1–3 (the enumerated Γ, or the buffers accepted by the automaton).
    Duplicates are removed, conditions 4 (skip-till-next-match) and 5
    (maximality) are enforced, and finally overlapping matches are handled:

    * ``overlap="suppress"`` (default) — greedy leftmost selection: a match
      is reported only if it shares no event with an already reported
      (earlier-starting) match.  This yields exactly the paper's intended
      results for Query Q1, where the suffix of an already reported match
      is not reported again.
    * ``overlap="allow"`` — every surviving substitution is reported, one
      per start position (the raw skip-till-next-match reading).
    """
    if overlap not in ("suppress", "allow"):
        raise ValueError(f"unknown overlap policy {overlap!r}")
    unique: List[Substitution] = []
    seen = set()
    for gamma in candidates:
        if gamma not in seen:
            seen.add(gamma)
            unique.append(gamma)
    survivors = [g for g in unique
                 if satisfies_next_match(g, unique)
                 and satisfies_maximality(g, unique)]
    survivors.sort(key=_sort_key)
    if overlap == "allow":
        return survivors
    reported: List[Substitution] = []
    used: Set[Event] = set()
    for gamma in survivors:
        events = set(gamma.events())
        if events & used:
            continue
        used |= events
        reported.append(gamma)
    return reported


def matching_substitutions(pattern: SESPattern,
                           relation: Iterable[Event],
                           max_group_bindings: int = 6,
                           overlap: str = "suppress"
                           ) -> List[Substitution]:
    """All matching substitutions of ``pattern`` in ``relation``.

    Implements Definition 2 end-to-end: enumerate Γ (conditions 1–3), then
    apply :func:`select_matches` (conditions 4–5 and overlap policy).
    This is the reference oracle; its cost is exponential in the relation
    size.
    """
    if isinstance(relation, EventRelation):
        events: Sequence[Event] = relation.events
    else:
        events = sorted(relation, key=lambda e: e.ts)
    candidates = enumerate_candidates(pattern, events, max_group_bindings)
    return select_matches(candidates, overlap=overlap)
