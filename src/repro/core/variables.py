"""Event variables: singleton variables and group (Kleene plus) variables.

An event set pattern is a set of event variables (Section 3.2).  A
*singleton* variable binds exactly one input event; a *group* variable
``v+`` carries a Kleene plus quantifier and binds one or more events.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["Variable", "var", "group", "parse_variable"]


class Variable:
    """An event variable, identified by name and quantification.

    Two variables are equal iff they have the same name and the same
    quantifier; a pattern must not reuse a name across variables.
    """

    __slots__ = ("name", "is_group")

    def __init__(self, name: str, is_group: bool = False):
        if not name or not isinstance(name, str):
            raise ValueError(f"variable name must be a non-empty string, got {name!r}")
        if name.endswith("+"):
            raise ValueError(
                f"variable name {name!r} must not end with '+'; "
                "use group=True or parse_variable()"
            )
        self.name = name
        self.is_group = bool(is_group)

    @property
    def is_singleton(self) -> bool:
        """True iff the variable binds exactly one event."""
        return not self.is_group

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name and self.is_group == other.is_group

    def __hash__(self) -> int:
        return hash((self.name, self.is_group))

    def __lt__(self, other: "Variable") -> bool:
        # Deterministic ordering for display and canonical iteration.
        return (self.name, self.is_group) < (other.name, other.is_group)

    def __repr__(self) -> str:
        return f"{self.name}+" if self.is_group else self.name


def var(name: str) -> Variable:
    """Create a singleton event variable."""
    return Variable(name, is_group=False)


def group(name: str) -> Variable:
    """Create a group (Kleene plus) event variable ``name+``."""
    return Variable(name, is_group=True)


def parse_variable(spec: str) -> Variable:
    """Parse ``"v"`` into a singleton and ``"v+"`` into a group variable."""
    spec = spec.strip()
    if spec.endswith("+"):
        return group(spec[:-1])
    return var(spec)


def parse_variables(specs: Iterable[str]) -> Tuple[Variable, ...]:
    """Parse a sequence of variable specs (see :func:`parse_variable`)."""
    return tuple(parse_variable(s) for s in specs)
