"""SES patterns (Definition 1 of the paper).

A sequenced event set pattern is a triple ``P = (<V1, ..., Vm>, Θ, τ)``:

* ``<V1, ..., Vm>`` is a sequence of pairwise disjoint *event set patterns*,
  each a set of event variables;
* ``Θ`` is a set of :class:`~repro.core.conditions.Condition` objects over
  those variables;
* ``τ`` is the maximal duration between the chronologically first and last
  matching event.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from .conditions import Condition, parse_condition
from .variables import Variable, parse_variable

__all__ = ["SESPattern", "PatternError"]


class PatternError(ValueError):
    """Raised when a SES pattern is malformed."""


VariableSpec = Union[Variable, str]


def _as_variable(spec: VariableSpec) -> Variable:
    if isinstance(spec, Variable):
        return spec
    if isinstance(spec, str):
        return parse_variable(spec)
    raise PatternError(f"invalid variable spec {spec!r}")


class SESPattern:
    """A sequenced event set pattern ``P = (<V1, ..., Vm>, Θ, τ)``.

    Parameters
    ----------
    sets:
        Sequence of event set patterns.  Each set is given as an iterable of
        :class:`~repro.core.variables.Variable` objects or strings (``"v"``
        for singletons, ``"v+"`` for group variables).
    conditions:
        Iterable of :class:`~repro.core.conditions.Condition` objects or
        condition strings such as ``"c.L = 'C'"``.
    tau:
        Maximal duration spanned by a match (same unit as the event
        timestamps; hours in the paper's running example).

    Examples
    --------
    The paper's Query Q1::

        SESPattern(
            sets=[["c", "p+", "d"], ["b"]],
            conditions=[
                "c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'",
                "c.ID = p.ID", "c.ID = d.ID", "d.ID = b.ID",
            ],
            tau=264,
        )
    """

    def __init__(self,
                 sets: Sequence[Iterable[VariableSpec]],
                 conditions: Iterable[Union[Condition, str]] = (),
                 tau: Any = 0):
        if not sets:
            raise PatternError("a SES pattern needs at least one event set pattern")
        parsed_sets: List[FrozenSet[Variable]] = []
        seen: Dict[str, Variable] = {}
        for i, raw_set in enumerate(sets):
            variables = [_as_variable(s) for s in raw_set]
            if not variables:
                raise PatternError(f"event set pattern V{i + 1} is empty")
            fs = frozenset(variables)
            if len(fs) != len(variables):
                raise PatternError(
                    f"duplicate variables within event set pattern V{i + 1}"
                )
            for v in variables:
                if v.name in seen:
                    raise PatternError(
                        f"variable name {v.name!r} reused across the pattern; "
                        "event set patterns must be disjoint"
                    )
                seen[v.name] = v
            parsed_sets.append(fs)
        self._sets: Tuple[FrozenSet[Variable], ...] = tuple(parsed_sets)
        self._by_name: Dict[str, Variable] = seen

        for c in conditions:
            if isinstance(c, str):
                try:
                    c = parse_condition(c, self._by_name)
                except ValueError as exc:
                    raise PatternError(str(exc)) from exc
            if not isinstance(c, Condition):
                raise PatternError(f"invalid condition {c!r}")
            for v in c.variables:
                declared = self._by_name.get(v.name)
                if declared is None:
                    raise PatternError(
                        f"condition {c!r} mentions undeclared variable {v.name!r}"
                    )
                if declared != v:
                    raise PatternError(
                        f"condition {c!r} uses {v!r} but the pattern declares "
                        f"{declared!r}; quantifiers must agree"
                    )
        # Re-parse strings once variables are validated (order preserved,
        # duplicates removed while keeping the first occurrence).
        uniq: List[Condition] = []
        for c in conditions:
            cond = parse_condition(c, self._by_name) if isinstance(c, str) else c
            if cond not in uniq:
                uniq.append(cond)
        self._conditions: Tuple[Condition, ...] = tuple(uniq)

        try:
            negative = tau < 0
        except TypeError as exc:
            raise PatternError(f"invalid duration tau={tau!r}") from exc
        if negative:
            raise PatternError(f"duration tau must be non-negative, got {tau!r}")
        self.tau = tau

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def sets(self) -> Tuple[FrozenSet[Variable], ...]:
        """The event set patterns ``<V1, ..., Vm>`` in order."""
        return self._sets

    @property
    def conditions(self) -> Tuple[Condition, ...]:
        """The conditions Θ, in declaration order."""
        return self._conditions

    @property
    def variables(self) -> FrozenSet[Variable]:
        """All event variables ``V = V1 ∪ ... ∪ Vm``."""
        return frozenset(self._by_name.values())

    @property
    def group_variables(self) -> FrozenSet[Variable]:
        """The group (Kleene plus) variables of the pattern."""
        return frozenset(v for v in self.variables if v.is_group)

    @property
    def singleton_variables(self) -> FrozenSet[Variable]:
        """The singleton variables of the pattern."""
        return frozenset(v for v in self.variables if v.is_singleton)

    def __len__(self) -> int:
        """Number of event set patterns ``m``."""
        return len(self._sets)

    def variable(self, name: str) -> Variable:
        """Look up a declared variable by bare name (without ``+``)."""
        try:
            return self._by_name[name.rstrip("+")]
        except KeyError:
            raise PatternError(f"pattern declares no variable {name!r}") from None

    def set_index(self, variable: Variable) -> int:
        """Index ``i`` (0-based) of the event set pattern containing ``variable``."""
        for i, vs in enumerate(self._sets):
            if variable in vs:
                return i
        raise PatternError(f"{variable!r} is not a variable of this pattern")

    def preceding_variables(self, set_index: int) -> FrozenSet[Variable]:
        """Variables of all event set patterns strictly before ``set_index``."""
        out: set = set()
        for vs in self._sets[:set_index]:
            out |= vs
        return frozenset(out)

    # ------------------------------------------------------------------
    # Condition routing
    # ------------------------------------------------------------------
    def constant_conditions(self, variable: Optional[Variable] = None
                            ) -> Tuple[Condition, ...]:
        """Constant conditions ``v.A φ C``, optionally for one variable."""
        out = [c for c in self._conditions if c.is_constant]
        if variable is not None:
            out = [c for c in out if c.left.variable == variable]
        return tuple(out)

    def conditions_mentioning(self, variable: Variable) -> Tuple[Condition, ...]:
        """All conditions that mention ``variable``."""
        return tuple(c for c in self._conditions if c.mentions(variable))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SESPattern):
            return NotImplemented
        return (self._sets == other._sets
                and set(self._conditions) == set(other._conditions)
                and self.tau == other.tau)

    def __hash__(self) -> int:
        return hash((self._sets, frozenset(self._conditions), self.tau))

    def __repr__(self) -> str:
        sets = ", ".join(
            "{" + ", ".join(repr(v) for v in sorted(vs)) + "}" for vs in self._sets
        )
        return f"SESPattern(<{sets}>, |Θ|={len(self._conditions)}, τ={self.tau})"
