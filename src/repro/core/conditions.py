"""Conditions over event variables (the set Θ of a SES pattern).

A condition has one of two shapes (Definition 1):

* ``v.A φ C`` — a *constant condition* comparing an attribute of the events
  bound to ``v`` with a constant;
* ``v.A φ v'.A'`` — a *variable condition* comparing attributes of events
  bound to two (possibly equal) variables.

``φ`` ranges over ``=, !=, <, <=, >, >=``.  Conditions on group variables
apply to *every* event bound to the variable (decomposition semantics of
Section 3.2).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, Optional

from .events import Event
from .variables import Variable

__all__ = [
    "Operand",
    "Const",
    "Attr",
    "Condition",
    "OPERATORS",
    "attr",
    "const",
]

#: Comparison operators admitted by Definition 1 (plus ``!=`` which the SQL
#: proposal writes ``<>``; it is harmless and often useful).
OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Operator names mirrored around the comparison, used to normalise
#: conditions so that a designated variable appears on the left.
MIRRORED: Dict[str, str] = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


#: Sentinel distinguishing "attribute absent" from any real value.
_MISSING = object()


class Operand:
    """Base class for condition operands."""

    __slots__ = ()


class Const(Operand):
    """A constant operand ``C``."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Const):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


class Attr(Operand):
    """An attribute operand ``v.A``."""

    __slots__ = ("variable", "attribute")

    def __init__(self, variable: Variable, attribute: str):
        if not isinstance(variable, Variable):
            raise TypeError(f"expected Variable, got {variable!r}")
        self.variable = variable
        self.attribute = attribute

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attr):
            return NotImplemented
        return (self.variable == other.variable
                and self.attribute == other.attribute)

    def __hash__(self) -> int:
        return hash((self.variable, self.attribute))

    def __repr__(self) -> str:
        return f"{self.variable}.{self.attribute}"


def attr(variable: Variable, attribute: str) -> Attr:
    """Shorthand for :class:`Attr`."""
    return Attr(variable, attribute)


def const(value: Any) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


class Condition:
    """A single condition ``left φ right`` from Θ.

    The left operand must be an :class:`Attr`; the right operand is either
    an :class:`Attr` or a :class:`Const`.  Use :meth:`evaluate` to test the
    condition against concrete events.
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Attr, op: str, right: Operand):
        if op not in OPERATORS:
            raise ValueError(f"unknown comparison operator {op!r}")
        if not isinstance(left, Attr):
            raise TypeError("left operand of a condition must be v.A")
        if not isinstance(right, (Attr, Const)):
            raise TypeError("right operand must be v.A or a constant")
        self.left = left
        self.op = op
        self.right = right

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True iff the condition has the shape ``v.A φ C``."""
        return isinstance(self.right, Const)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The set of variables the condition mentions (one or two)."""
        vs = {self.left.variable}
        if isinstance(self.right, Attr):
            vs.add(self.right.variable)
        return frozenset(vs)

    def mentions(self, variable: Variable) -> bool:
        """True iff the condition constrains ``variable``."""
        return variable in self.variables

    def other_variable(self, variable: Variable) -> Optional[Variable]:
        """The other variable of a two-variable condition, else ``None``."""
        if not isinstance(self.right, Attr):
            return None
        if self.left.variable == variable:
            return self.right.variable
        if self.right.variable == variable:
            return self.left.variable
        return None

    def normalised_for(self, variable: Variable) -> "Condition":
        """Return an equivalent condition with ``variable`` on the left.

        Only meaningful for conditions that mention ``variable``; a
        condition already left-anchored (or a constant condition on the
        variable) is returned unchanged.
        """
        if self.left.variable == variable:
            return self
        if isinstance(self.right, Attr) and self.right.variable == variable:
            return Condition(self.right, MIRRORED[self.op], self.left)
        raise ValueError(f"condition {self!r} does not mention {variable!r}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, bindings: Dict[Variable, Event]) -> bool:
        """Evaluate against a per-variable event assignment.

        ``bindings`` maps each mentioned variable to a single event (group
        variables are evaluated once per decomposed combination, handled by
        the caller).  Comparisons on incomparable values, and comparisons
        involving an attribute the event does not carry, return ``False``
        rather than raising — the permissive semantics of SQL-style
        predicates over heterogeneous event payloads.
        """
        left_event = bindings.get(self.left.variable)
        if left_event is None:
            raise KeyError(f"no binding for {self.left.variable!r}")
        sentinel = _MISSING
        lhs = left_event.get(self.left.attribute, sentinel)
        if lhs is sentinel:
            return False
        if isinstance(self.right, Const):
            rhs = self.right.value
        else:
            right_event = bindings.get(self.right.variable)
            if right_event is None:
                raise KeyError(f"no binding for {self.right.variable!r}")
            rhs = right_event.get(self.right.attribute, sentinel)
            if rhs is sentinel:
                return False
        try:
            return bool(OPERATORS[self.op](lhs, rhs))
        except TypeError:
            return False

    def evaluate_events(self, left_event: Event,
                        right_event: Optional[Event] = None) -> bool:
        """Evaluate with explicit events for the left/right operands.

        Missing attributes and incomparable values yield ``False``.
        """
        lhs = left_event.get(self.left.attribute, _MISSING)
        if lhs is _MISSING:
            return False
        if isinstance(self.right, Const):
            rhs = self.right.value
        else:
            if right_event is None:
                raise ValueError("two-variable condition needs a right event")
            rhs = right_event.get(self.right.attribute, _MISSING)
            if rhs is _MISSING:
                return False
        try:
            return bool(OPERATORS[self.op](lhs, rhs))
        except TypeError:
            return False

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        return (self.left == other.left and self.op == other.op
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


def _parse_operand(spec: str, variables: Dict[str, Variable]) -> Operand:
    """Parse ``"v.A"`` (with v a known variable) or a constant literal."""
    text = spec.strip()
    if "." in text:
        head, _, attribute = text.partition(".")
        head = head.strip().rstrip("+")
        if head in variables and attribute:
            return Attr(variables[head], attribute.strip())
    if text.startswith(("'", '"')) and text.endswith(text[0]) and len(text) >= 2:
        return Const(text[1:-1])
    try:
        return Const(int(text))
    except ValueError:
        pass
    try:
        return Const(float(text))
    except ValueError:
        pass
    return Const(text)


def parse_condition(text: str, variables: Dict[str, Variable]) -> Condition:
    """Parse a condition string such as ``"c.L = 'C'"`` or ``"c.ID = p.ID"``.

    ``variables`` maps bare variable names (without ``+``) to their
    :class:`~repro.core.variables.Variable` objects.  Group variables may be
    written with or without the trailing ``+``.
    """
    for op in ("<=", ">=", "!=", "<>", "<", ">", "="):
        if op in text:
            left_text, _, right_text = text.partition(op)
            left = _parse_operand(left_text, variables)
            if not isinstance(left, Attr):
                raise ValueError(
                    f"left side of condition {text!r} must be v.A with a "
                    f"declared variable"
                )
            right = _parse_operand(right_text, variables)
            return Condition(left, "!=" if op == "<>" else op, right)
    raise ValueError(f"no comparison operator found in condition {text!r}")
