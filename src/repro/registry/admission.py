"""Per-pattern admission specs and start gates over the shared bank.

:class:`AdmissionSpec` replays a pattern's ``"conjunctive"``
:class:`~repro.plan.prefilter.VectorizedPrefilter` — an event is
admitted iff *some variable's* constant predicates all hold, and a
variable without constant conditions admits everything — but against
the registry-wide :class:`~repro.registry.bank.PredicateBank` truth
vector instead of re-evaluating the pattern's own predicate copies.
The decision is bit-identical by construction: both sides are built
from ``pattern.constant_conditions(variable)`` over
``sorted(pattern.variables)`` and evaluate predicates with the same
missing-attribute / incomparable-value semantics.

:class:`StartGate` goes one automaton layer deeper: it captures the
constant and self conditions of the (trimmed) automaton's
start-outgoing transitions.  ``fires(truth)`` is then *exactly*
"some start transition admits the event against an empty buffer"
(:meth:`Transition.admits` evaluates only those condition shapes at
the start state — a two-variable condition with an unbound partner is
vacuously satisfied, which the gate mirrors by skipping it).  When the
gate is closed the registry feeds the event with ``allow_start=False``:
the fresh start-state instance it skips would have fired no transition
and been dropped inside the consume loop, so the match set is
unchanged.  Patterns whose start layers share structure hash to the
same :attr:`StartGate.key`, so one gate evaluation serves all of them.
"""

from __future__ import annotations

from typing import List, Tuple

from ..automaton.automaton import SESAutomaton
from ..core.pattern import SESPattern
from .bank import PredicateBank, mask_bits

__all__ = ["AdmissionSpec", "StartGate"]


class AdmissionSpec:
    """One pattern's conjunctive prefilter, as bank predicate masks."""

    __slots__ = ("pids", "group_masks", "always")

    def __init__(self, bank: PredicateBank, pattern: SESPattern):
        pids: List[int] = []
        group_masks: List[int] = []
        always = True
        groups = 0
        for variable in sorted(pattern.variables):
            mask = 0
            empty = True
            for condition in pattern.constant_conditions(variable):
                pid = bank.intern_const(condition.left.attribute,
                                        condition.op, condition.right.value)
                pids.append(pid)
                mask |= 1 << pid
                empty = False
            groups += 1
            if empty:
                # An unconstrained variable admits every event; the whole
                # spec collapses to "always admitted" (the prefilter's
                # full-mask shortcut).
                always = True
                break
            group_masks.append(mask)
            always = False
        if groups == 0:
            always = True
        #: Interned predicate ids (with multiplicity) — released on
        #: deregistration.
        self.pids: Tuple[int, ...] = tuple(pids)
        #: Per-variable AND-masks; admission = OR over the groups.
        self.group_masks: Tuple[int, ...] = tuple(group_masks)
        #: True iff every event is admitted (some variable unconstrained).
        self.always = always

    def admitted(self, truth: int) -> bool:
        """Scalar admission decision from a bank truth vector."""
        if self.always:
            return True
        for mask in self.group_masks:
            if truth & mask == mask:
                return True
        return False

    def admitted_mask(self, columns: List[int], full: int) -> int:
        """Columnar admission mask over a batch (bit ``i`` = event ``i``)."""
        if self.always:
            return full
        out = 0
        for mask in self.group_masks:
            group = full
            for pid in mask_bits(mask):
                group &= columns[pid]
                if not group:
                    break
            out |= group
            if out == full:
                break
        return out

    def release(self, bank: PredicateBank) -> None:
        for pid in self.pids:
            bank.release(pid)

    def __repr__(self) -> str:
        state = "always" if self.always else f"{len(self.group_masks)} groups"
        return f"AdmissionSpec({state}, {len(self.pids)} predicates)"


class StartGate:
    """The start-transition layer of one automaton, as predicate masks.

    ``transition_masks[j]`` ANDs the bank predicates of the j-th
    start-outgoing transition's constant and self conditions;
    :meth:`fires` is true iff some transition's mask is satisfied —
    i.e. iff a fresh start-state instance would consume the event.
    """

    __slots__ = ("pids", "transition_masks", "key")

    def __init__(self, bank: PredicateBank, automaton: SESAutomaton):
        pids: List[int] = []
        transition_masks: List[int] = []
        for transition in automaton.outgoing(automaton.start):
            mask = 0
            for condition in transition.conditions:
                other = condition.other_variable(transition.variable)
                if other is not None and other != transition.variable:
                    # Two-variable condition whose partner is unbound at
                    # the start state: Transition.admits treats it as
                    # satisfied (empty partner loop), so the gate must
                    # not constrain on it either.
                    continue
                anchored = condition.normalised_for(transition.variable)
                if anchored.is_constant:
                    pid = bank.intern_const(anchored.left.attribute,
                                            anchored.op,
                                            anchored.right.value)
                else:
                    pid = bank.intern_self(anchored)
                pids.append(pid)
                mask |= 1 << pid
            transition_masks.append(mask)
        self.pids: Tuple[int, ...] = tuple(pids)
        self.transition_masks: Tuple[int, ...] = tuple(transition_masks)
        #: Structural identity: patterns with equal keys share one gate
        #: evaluation per event (the common-prefix grouping).
        self.key = frozenset(transition_masks)

    def fires(self, truth: int) -> bool:
        """True iff some start transition admits the event."""
        for mask in self.transition_masks:
            if truth & mask == mask:
                return True
        return False

    @staticmethod
    def key_fires(key: frozenset, truth: int) -> bool:
        """:meth:`fires` from a bare structural key (shared evaluation)."""
        for mask in key:
            if truth & mask == mask:
                return True
        return False

    @staticmethod
    def key_fire_mask(key: frozenset, columns: List[int], full: int) -> int:
        """Columnar :meth:`fires` over a batch, from a structural key."""
        out = 0
        for mask in key:
            fires = full
            for pid in mask_bits(mask):
                fires &= columns[pid]
                if not fires:
                    break
            out |= fires
            if out == full:
                break
        return out

    def release(self, bank: PredicateBank) -> None:
        for pid in self.pids:
            bank.release(pid)

    def __repr__(self) -> str:
        return f"StartGate({len(self.transition_masks)} transitions)"
