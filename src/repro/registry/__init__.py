"""Multi-tenant pattern registry with cross-pattern plan sharing.

The production regime the ROADMAP names: thousands of *distinct* live
patterns over one event stream, with hot register/deregister against a
running ``repro serve`` process.  One shared admission pass — the
deduplicated :class:`PredicateBank` plus per-pattern bitmask
:class:`AdmissionSpec`/:class:`StartGate` algebra — feeds every
registered :class:`~repro.plan.plan.PatternPlan`, bit-identical to
running each pattern through its own matcher.  See ``docs/registry.md``.
"""

from .admission import AdmissionSpec, StartGate
from .bank import PredicateBank
from .registry import (DuplicatePatternError, PatternRegistry, QuotaExceeded,
                       RegistryError, TenantQuota, UnknownPatternError)
from .service import RegistryHTTPAdapter

__all__ = [
    "AdmissionSpec",
    "DuplicatePatternError",
    "PatternRegistry",
    "PredicateBank",
    "QuotaExceeded",
    "RegistryError",
    "RegistryHTTPAdapter",
    "StartGate",
    "TenantQuota",
    "UnknownPatternError",
]
