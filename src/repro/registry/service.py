"""HTTP surface of the pattern registry.

:class:`RegistryHTTPAdapter` translates the ``/patterns`` routes the
:class:`~repro.obs.live.ObsServer` exposes into registry calls and maps
registry errors onto HTTP statuses:

=============================== ======= ==============================
request                         status  body
=============================== ======= ==============================
``GET /patterns``               200     ``{"patterns": [...], ...}``
``POST /patterns``              201     ``{"id", "fingerprint", ...}``
  malformed body / bad query    400     ``{"error": ...}``
  duplicate id                  409     ``{"error": ...}``
  tenant over quota             429     ``{"error": ...}``
``DELETE /patterns/<id>``       200     the removed pattern's summary
  unknown id                    404     ``{"error": ...}``
=============================== ======= ==============================

The POST body is JSON: ``{"query": "<PERMUTE text>"}`` plus optional
``"id"`` and ``"tenant"`` keys.  The CLI client is
``repro registry add|rm|list --server URL``.
"""

from __future__ import annotations

from typing import Tuple

from ..lang import QueryError
from .registry import (DuplicatePatternError, PatternRegistry, QuotaExceeded,
                       UnknownPatternError)

__all__ = ["RegistryHTTPAdapter"]

#: ``(status, payload)`` returned to the HTTP handler.
Reply = Tuple[int, dict]


class RegistryHTTPAdapter:
    """Bridges the ObsServer ``/patterns`` routes to a registry."""

    def __init__(self, registry: PatternRegistry):
        self.registry = registry

    def list(self) -> Reply:
        """``GET /patterns``: summary rows plus sharing statistics."""
        registry = self.registry
        return 200, {
            "patterns": registry.describe(),
            "predicates": registry.predicate_count,
            "prefix_groups": registry.prefix_group_count,
            "tenants": registry.tenant_stats(),
        }

    def add(self, payload) -> Reply:
        """``POST /patterns``: register the query in the JSON body."""
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            return 400, {"error": "missing 'query' (PERMUTE text)"}
        pattern_id = payload.get("id")
        if pattern_id is not None and not isinstance(pattern_id, str):
            return 400, {"error": "'id' must be a string"}
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str):
            return 400, {"error": "'tenant' must be a string"}
        registry = self.registry
        try:
            pattern_id = registry.register(query, pattern_id=pattern_id,
                                           tenant=tenant)
        except QueryError as exc:
            return 400, {"error": f"query error: {exc}"}
        except DuplicatePatternError as exc:
            return 409, {"error": str(exc)}
        except QuotaExceeded as exc:
            return 429, {"error": str(exc)}
        for row in registry.describe():
            if row["id"] == pattern_id:
                return 201, row
        return 201, {"id": pattern_id}

    def remove(self, pattern_id: str) -> Reply:
        """``DELETE /patterns/<id>``: deregister, returning the summary."""
        try:
            return 200, self.registry.deregister(pattern_id)
        except UnknownPatternError as exc:
            return 404, {"error": str(exc)}
