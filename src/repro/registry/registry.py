"""The multi-tenant pattern registry: one admission pass, many plans.

:class:`PatternRegistry` holds any number of **distinct** compiled
:class:`~repro.plan.plan.PatternPlan`s and drives them all from one
shared per-event admission pass:

1. every pushed event is evaluated once against the deduplicated
   :class:`~repro.registry.bank.PredicateBank` (each distinct predicate
   across *all* registered patterns costs one comparison, however many
   patterns reference it), yielding a truth bitmap;
2. each pattern's :class:`~repro.registry.admission.AdmissionSpec`
   decides admission by bitmask algebra — bit-identical to that
   pattern's own Section 4.5 conjunctive prefilter;
3. patterns whose start layers are structurally equal share one
   :class:`~repro.registry.admission.StartGate` evaluation (the common
   automaton-prefix grouping); a closed gate feeds the event with
   ``allow_start=False``, skipping the fresh instance the per-pattern
   executor would have created and immediately dropped;
4. a non-admitted event reaches a pattern only as an expiry tick (and
   only while that pattern has live instances); patterns neither
   admitted nor active skip the event entirely.

Every step is match-set-preserving, so the registry's per-pattern
results are identical to running each pattern through its own
:class:`~repro.stream.runner.ContinuousMatcher` — the property
``tests/test_registry.py`` pins for hundreds of randomized patterns.

Hot register/deregister is safe against a live stream: all state is
mutated under one lock, and :meth:`push_many` re-acquires it between
chunks so an HTTP registration never starves behind a long replay.  A
pattern registered mid-stream sees exactly the suffix of events pushed
after its registration.

Tenancy: each registered pattern belongs to a tenant; a
:class:`TenantQuota` caps the tenant's pattern count and attaches one
shared :class:`~repro.resilience.guards.ResourceGuard` (raise / shed /
degrade policies, see ``docs/resilience.md``) to every executor the
tenant registers — ceilings apply per pattern, trip/shed counters
aggregate per tenant.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..agg.result import Match
from ..automaton.executor import MatchResult, SESExecutor
from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.substitution import Substitution
from ..plan.cache import as_plan
from ..plan.plan import PatternPlan
from ..resilience.guards import GuardConfig, ResourceGuard
from ..stream.runner import ContinuousMatcher
from .admission import AdmissionSpec, StartGate
from .bank import PredicateBank

__all__ = ["PatternRegistry", "TenantQuota", "RegistryError",
           "DuplicatePatternError", "UnknownPatternError", "QuotaExceeded"]

#: Events processed per lock acquisition in :meth:`PatternRegistry.push_many`
#: — large enough to amortise locking and the columnar pass, small enough
#: that a concurrent register/deregister gets the lock promptly.
CHUNK_SIZE = 256

#: Subscribers receive ``(pattern_id, match)`` where ``match`` is the
#: unified :class:`~repro.agg.result.Match` (its ``pattern_id`` field
#: carries the id too, for callbacks that only take the match).
MatchCallback = Callable[[str, Match], None]


class RegistryError(Exception):
    """Base class for registry errors."""


class DuplicatePatternError(RegistryError):
    """A pattern id is already registered."""


class UnknownPatternError(RegistryError, KeyError):
    """No pattern is registered under the given id."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class QuotaExceeded(RegistryError):
    """A tenant attempted to exceed its registered-pattern quota."""


@dataclass(frozen=True)
class TenantQuota:
    """Resource quotas for one tenant's registered patterns.

    ``max_patterns`` caps how many patterns the tenant may hold at once
    (``None`` = unlimited).  ``guard`` attaches resource-guard ceilings
    (|Ω|, buffer bytes, per-event seconds with raise/shed/degrade
    policies) to every executor the tenant registers; the guard object
    is shared tenant-wide so its trip/shed counters aggregate.
    """

    max_patterns: Optional[int] = None
    guard: Optional[GuardConfig] = None

    def __post_init__(self):
        if self.max_patterns is not None and self.max_patterns < 1:
            raise ValueError("max_patterns must be >= 1")


class _Tenant:
    """Per-tenant live state: quota, shared guard, pattern count."""

    __slots__ = ("name", "quota", "guard", "patterns")

    def __init__(self, name: str, quota: Optional[TenantQuota], registry):
        self.name = name
        self.quota = quota
        self.guard = None
        if quota is not None and quota.guard is not None:
            obs = registry._obs
            self.guard = ResourceGuard(
                quota.guard,
                registry=None if obs is None else obs.registry)
        self.patterns = 0


class _Entry:
    """One registered pattern: plan, matcher, admission artifacts."""

    __slots__ = ("pattern_id", "tenant", "plan", "matcher", "spec", "gate",
                 "query", "deliveries", "match_counter", "events_counter",
                 "agg_counter", "agg_published")

    def __init__(self, pattern_id: str, tenant: str, plan: PatternPlan,
                 matcher: ContinuousMatcher, spec: AdmissionSpec,
                 gate: StartGate, query: Optional[str]):
        self.pattern_id = pattern_id
        self.tenant = tenant
        self.plan = plan
        self.matcher = matcher
        self.spec = spec
        self.gate = gate
        self.query = query
        self.deliveries = 0
        self.match_counter = None
        self.events_counter = None
        self.agg_counter = None
        self.agg_published = 0


class PatternRegistry:
    """Thousands of live patterns behind one shared admission pass.

    Parameters
    ----------
    use_filter:
        Apply the shared admission pass (each pattern's conjunctive
        prefilter, deduplicated).  With ``False`` every event is
        delivered to every pattern — the per-pattern matchers then run
        unfiltered, matching ``ContinuousMatcher(use_filter=False)``.
    suppress_overlaps:
        Per-pattern overlap suppression (matches of different patterns
        may freely share events), as in :class:`ContinuousMatcher`.
    observability:
        Optional :class:`~repro.obs.Observability`.  The registry
        publishes aggregate counters (``ses_registry_*``) and, per
        registered pattern, labeled ``ses_pattern_matches_total`` /
        ``ses_pattern_events_total`` series keyed by pattern id.
    default_quota:
        :class:`TenantQuota` applied to tenants that register without an
        explicit quota.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`, attached to
        the **first** registered pattern's executor (the served query in
        ``repro serve``); later registrations run unrecorded.
    """

    def __init__(self, *, use_filter: bool = True,
                 suppress_overlaps: bool = True, observability=None,
                 default_quota: Optional[TenantQuota] = None, flight=None):
        self._lock = threading.RLock()
        self._bank = PredicateBank()
        self._entries: Dict[str, _Entry] = {}
        self._tenants: Dict[str, _Tenant] = {}
        self._gate_members: Dict[frozenset, int] = {}
        self._use_filter = use_filter
        self._suppress_overlaps = suppress_overlaps
        self._obs = observability
        self._default_quota = default_quota
        self._flight = flight
        self._flight_attached = False
        self._auto_id = 0
        self._reported: List[Match] = []
        self._callbacks: List[MatchCallback] = []
        self._closed = False
        if observability is None:
            self._events_counter = None
            self._deliveries_counter = None
            self._matches_counter = None
        else:
            registry = observability.registry
            self._events_counter = registry.counter(
                "ses_registry_events_total",
                help="events pushed through the shared admission pass")
            self._deliveries_counter = registry.counter(
                "ses_registry_deliveries_total",
                help="event-to-pattern deliveries after shared admission")
            self._matches_counter = registry.counter(
                "ses_registry_matches_total",
                help="matches reported across all registered patterns")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, pattern, *, pattern_id: Optional[str] = None,
                 tenant: str = "default",
                 quota: Optional[TenantQuota] = None) -> str:
        """Register a pattern; returns its id.

        ``pattern`` may be a :class:`~repro.core.pattern.SESPattern`, a
        compiled :class:`~repro.plan.plan.PatternPlan`, or PERMUTE query
        text (parsed via :func:`repro.lang.parse_query_spec`).  Query
        text with a ``SELECT`` clause registers an **aggregation**
        pattern: matches fold into live totals instead of materialising
        (read them via :meth:`aggregates_of`); a plan compiled with an
        aggregate behaves the same.  Ids default to ``p0``, ``p1``, …;
        an explicit duplicate raises :class:`DuplicatePatternError`.
        ``quota`` pins the tenant's quota on first use (a tenant's quota
        is set once; later registrations for the same tenant must not
        pass a conflicting one).
        """
        query = None
        aggregate = None
        if isinstance(pattern, str):
            from ..lang import parse_query_spec
            query = pattern
            pattern, aggregate = parse_query_spec(pattern)
        if not isinstance(pattern, (SESPattern, PatternPlan)):
            raise TypeError(
                f"expected SESPattern, PatternPlan or query text, got "
                f"{type(pattern).__name__}")
        if aggregate is not None:
            from ..plan.cache import compile as compile_plan
            plan = compile_plan(pattern, aggregate=aggregate)
        else:
            plan = as_plan(pattern)
        with self._lock:
            if self._closed:
                raise RegistryError("registry is closed")
            if pattern_id is None:
                while f"p{self._auto_id}" in self._entries:
                    self._auto_id += 1
                pattern_id = f"p{self._auto_id}"
                self._auto_id += 1
            elif pattern_id in self._entries:
                raise DuplicatePatternError(
                    f"pattern id {pattern_id!r} is already registered")
            state = self._tenants.get(tenant)
            if state is None:
                state = _Tenant(tenant, quota or self._default_quota, self)
                self._tenants[tenant] = state
            elif quota is not None and quota != state.quota:
                raise ValueError(
                    f"tenant {tenant!r} already has quota {state.quota!r}")
            limit = (state.quota.max_patterns
                     if state.quota is not None else None)
            if limit is not None and state.patterns >= limit:
                raise QuotaExceeded(
                    f"tenant {tenant!r} is at its quota of {limit} "
                    f"pattern(s)")
            flight = None
            if self._flight is not None and not self._flight_attached:
                flight = self._flight
                self._flight_attached = True
            matcher = ContinuousMatcher(
                plan, use_filter=self._use_filter,
                suppress_overlaps=self._suppress_overlaps,
                flight=flight, guard=state.guard)
            spec = AdmissionSpec(self._bank, plan.pattern)
            gate = StartGate(self._bank, plan.automaton)
            entry = _Entry(pattern_id, tenant, plan, matcher, spec, gate,
                           query)
            if self._obs is not None:
                registry = self._obs.registry
                entry.match_counter = registry.counter(
                    f"ses_pattern_matches_total[{pattern_id}]",
                    help="Matches reported, per registered pattern.",
                    labels={"pattern": pattern_id},
                    metric="ses_pattern_matches_total")
                entry.events_counter = registry.counter(
                    f"ses_pattern_events_total[{pattern_id}]",
                    help="Events delivered after shared admission, per "
                         "registered pattern.",
                    labels={"pattern": pattern_id},
                    metric="ses_pattern_events_total")
                if plan.aggregate is not None:
                    entry.agg_counter = registry.counter(
                        f"ses_agg_matches_folded_total[{pattern_id}]",
                        help="Matches folded into aggregates without "
                             "materialisation, per registered pattern.",
                        labels={"pattern": pattern_id},
                        metric="ses_agg_matches_folded_total")
            self._entries[pattern_id] = entry
            self._gate_members[gate.key] = (
                self._gate_members.get(gate.key, 0) + 1)
            state.patterns += 1
            self._publish_gauges()
            return pattern_id

    def deregister(self, pattern_id: str) -> dict:
        """Remove a pattern; its already-reported matches are kept.

        Live (unexpired) instances are discarded without flushing —
        deregistration means "stop watching", not end-of-stream.
        Returns a summary dict of the removed pattern.
        """
        with self._lock:
            entry = self._entries.pop(pattern_id, None)
            if entry is None:
                raise UnknownPatternError(
                    f"no pattern registered under id {pattern_id!r}")
            entry.spec.release(self._bank)
            entry.gate.release(self._bank)
            members = self._gate_members[entry.gate.key] - 1
            if members:
                self._gate_members[entry.gate.key] = members
            else:
                del self._gate_members[entry.gate.key]
            state = self._tenants[entry.tenant]
            state.patterns -= 1
            self._publish_gauges()
            return self._describe_entry(entry)

    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register ``callback(pattern_id, match)`` for every reported
        match (invoked under the registry lock — callbacks must not call
        back into the registry)."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def push(self, event: Event) -> List[Match]:
        """Push one event through the shared admission pass.

        Returns a :class:`~repro.agg.result.Match` (with its
        ``pattern_id`` set) for every match reported at this point.
        """
        with self._lock:
            return self._push_chunk([event])

    def push_many(self, events) -> List[Match]:
        """Push a batch, admitting it columnar in chunks.

        The lock is released between chunks of :data:`CHUNK_SIZE`
        events, so concurrent register/deregister calls interleave with
        a long replay instead of waiting for it to finish.
        """
        events = list(events)
        out: List[Match] = []
        for start in range(0, len(events), CHUNK_SIZE):
            with self._lock:
                out.extend(self._push_chunk(events[start:start + CHUNK_SIZE]))
        return out

    def _push_chunk(self, events: List[Event]) -> List[Match]:
        """One locked chunk: shared columnar admission, then fan-out."""
        n = len(events)
        full = (1 << n) - 1
        if self._events_counter is not None:
            self._events_counter.inc(n)
        lineage = (None if self._obs is None else self._obs.lineage)
        if lineage is not None:
            # Stamp ingest once per event at admission — per-pattern
            # matchers run observability-free, so this is the only point
            # that sees every event exactly once.
            for event in events:
                lineage.note_ingest(event)
        if not self._use_filter:
            # Unfiltered: every pattern sees every event, starts allowed.
            reported: List[Match] = []
            for entry in list(self._entries.values()):
                entry.deliveries += n
                if entry.events_counter is not None:
                    entry.events_counter.inc(n)
                for event in events:
                    self._collect(entry, entry.matcher.push(event), reported)
                self._publish_agg(entry)
            if self._deliveries_counter is not None:
                self._deliveries_counter.inc(n * len(self._entries))
            return reported
        columns = self._bank.truth_columns(events)
        # One columnar gate evaluation per *distinct* start structure.
        start_masks = {
            key: StartGate.key_fire_mask(key, columns, full)
            for key in self._gate_members}
        timestamps = [event.ts for event in events]
        reported = []
        for entry in list(self._entries.values()):
            admitted = entry.spec.admitted_mask(columns, full)
            matcher = entry.matcher
            if not admitted and not matcher.active_instances:
                continue
            starts = start_masks[entry.gate.key]
            delivered = 0
            # Jump between the pattern's admitted events; in the gaps,
            # an expiry sweep only matters past the matcher's next
            # expiry deadline (below it the sweep is a no-op), so skip
            # straight to the first event that can actually expire
            # something.
            deadline = matcher.next_expiry_ts
            i = 0
            while i < n:
                rest = admitted >> i
                next_admit = (i + (rest & -rest).bit_length() - 1
                              if rest else n)
                while deadline is not None:
                    j = bisect_right(timestamps, deadline, i, next_admit)
                    if j >= next_admit:
                        break
                    self._collect(entry, matcher.tick(events[j]), reported)
                    deadline = matcher.next_expiry_ts
                    i = j + 1
                if next_admit >= n:
                    break
                self._collect(
                    entry,
                    matcher.push(events[next_admit],
                                 allow_start=bool(starts
                                                  & (1 << next_admit))),
                    reported)
                delivered += 1
                deadline = matcher.next_expiry_ts
                i = next_admit + 1
            if delivered:
                entry.deliveries += delivered
                if entry.events_counter is not None:
                    entry.events_counter.inc(delivered)
                if self._deliveries_counter is not None:
                    self._deliveries_counter.inc(delivered)
            self._publish_agg(entry)
        return reported

    def _collect(self, entry: _Entry, matches: List[Substitution],
                 out: List[Match]) -> None:
        if not matches:
            return
        if entry.match_counter is not None:
            entry.match_counter.inc(len(matches))
        if self._matches_counter is not None:
            self._matches_counter.inc(len(matches))
        # Registry matchers run observability-free (the shared admission
        # pass owns the metrics), so delivery is the one stamping point:
        # the record carries event ids + deliver stage, with the path
        # reconstructed from the substitution's canonical order.
        lineage = (None if self._obs is None else self._obs.lineage)
        for substitution in matches:
            provenance = (lineage.deliver(substitution, by="registry",
                                          pattern_id=entry.pattern_id)
                          if lineage is not None else None)
            match = Match(substitution, pattern_id=entry.pattern_id,
                          provenance=provenance)
            self._reported.append(match)
            out.append(match)
            for callback in self._callbacks:
                callback(entry.pattern_id, match)

    def _publish_agg(self, entry: _Entry) -> None:
        """Publish the entry's fold-counter delta (aggregation patterns
        registered with observability only)."""
        if entry.agg_counter is None:
            return
        folded = entry.matcher.matches_folded
        delta = folded - entry.agg_published
        if delta > 0:
            entry.agg_counter.inc(delta)
            entry.agg_published = folded

    def close(self) -> List[Match]:
        """End-of-stream: flush every pattern's matcher."""
        with self._lock:
            self._closed = True
            reported: List[Match] = []
            for entry in self._entries.values():
                self._collect(entry, entry.matcher.close(), reported)
                self._publish_agg(entry)
            return reported

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(self, relation, *, selection: str = "paper",
                  consume: str = "greedy") -> Dict[str, MatchResult]:
        """Run every registered pattern over a finite relation at once.

        The bank's columnar pass computes each pattern's admission mask
        in one sweep; each plan then executes behind a
        :class:`~repro.plan.prefilter.MaskCursor` over its mask —
        bit-identical to ``plan.match(relation)`` per pattern, with the
        per-attribute predicate work shared across all of them.
        Independent of streaming state (fresh executors throughout).
        """
        events = list(relation)
        with self._lock:
            full = (1 << len(events)) - 1
            columns = (self._bank.truth_columns(events)
                       if self._use_filter else None)
            results: Dict[str, MatchResult] = {}
            for pattern_id, entry in self._entries.items():
                event_filter = None
                if columns is not None:
                    mask = entry.spec.admitted_mask(columns, full)
                    event_filter = entry.plan.prefilter("conjunctive").cursor(
                        mask, len(events))
                executor = SESExecutor(entry.plan.automaton,
                                       event_filter=event_filter,
                                       selection=selection,
                                       consume_mode=consume,
                                       aggregate=entry.plan.aggregate)
                results[pattern_id] = executor.run(events)
            return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pattern_ids(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pattern_id: str) -> bool:
        return pattern_id in self._entries

    @property
    def matches(self) -> List[Substitution]:
        """All matches reported so far (flat, across patterns)."""
        with self._lock:
            return [match.substitution for match in self._reported]

    def matches_of(self, pattern_id: str) -> List[Substitution]:
        """Matches reported so far for one pattern (survives deregister)."""
        with self._lock:
            if (pattern_id not in self._entries
                    and all(m.pattern_id != pattern_id
                            for m in self._reported)):
                raise UnknownPatternError(
                    f"no pattern registered under id {pattern_id!r}")
            return [match.substitution for match in self._reported
                    if match.pattern_id == pattern_id]

    def aggregates_of(self, pattern_id: str):
        """Live aggregates of one registered pattern as an
        :class:`~repro.agg.result.AggregateSeries` (``None`` for
        enumeration patterns)."""
        with self._lock:
            entry = self._entries.get(pattern_id)
            if entry is None:
                raise UnknownPatternError(
                    f"no pattern registered under id {pattern_id!r}")
            return entry.matcher.aggregates()

    @property
    def active_instances(self) -> int:
        """Total live automaton instances across all patterns."""
        with self._lock:
            return sum(entry.matcher.active_instances
                       for entry in self._entries.values())

    def tenant_of(self, pattern_id: str) -> Optional[str]:
        """The owning tenant of a registered pattern (``None`` when the
        pattern is unknown — e.g. already deregistered).  Safe to call
        from an ``on_match`` callback (the lock is re-entrant)."""
        with self._lock:
            entry = self._entries.get(pattern_id)
            return None if entry is None else entry.tenant

    @property
    def predicate_count(self) -> int:
        """Distinct live predicates in the shared bank."""
        with self._lock:
            return len(self._bank)

    @property
    def prefix_group_count(self) -> int:
        """Distinct start-gate structures (shared gate evaluations)."""
        with self._lock:
            return len(self._gate_members)

    def describe(self) -> List[dict]:
        """Per-pattern summary rows (the ``/patterns`` listing)."""
        with self._lock:
            return [self._describe_entry(entry)
                    for entry in self._entries.values()]

    def _describe_entry(self, entry: _Entry) -> dict:
        row = {
            "id": entry.pattern_id,
            "tenant": entry.tenant,
            "fingerprint": entry.plan.fingerprint,
            "query": entry.query,
            "active_instances": entry.matcher.active_instances,
            "matches": len(entry.matcher.matches),
            "events_delivered": entry.deliveries,
        }
        if entry.plan.aggregate is not None:
            series = entry.matcher.aggregates()
            row["aggregates"] = dict(series)
            row["matches_folded"] = series.matches_folded
        return row

    def tenant_stats(self) -> Dict[str, dict]:
        """Per-tenant usage: pattern count, quota, guard counters."""
        with self._lock:
            out = {}
            for name, state in self._tenants.items():
                if not state.patterns and state.quota is None:
                    continue
                row = {
                    "patterns": state.patterns,
                    "max_patterns": (state.quota.max_patterns
                                     if state.quota else None),
                }
                if state.guard is not None:
                    row["guard_policy"] = state.guard.config.policy
                    row["guard_trips"] = state.guard.trips
                    row["shed_instances"] = state.guard.shed_total
                out[name] = row
            return out

    def publish_stats(self) -> None:
        """Refresh registry gauges and flush matcher counters (if any)."""
        with self._lock:
            for entry in self._entries.values():
                self._publish_agg(entry)
            self._publish_gauges()

    def _publish_gauges(self) -> None:
        if self._obs is None:
            return
        registry = self._obs.registry
        registry.gauge(
            "ses_registry_patterns",
            help="patterns currently registered").set(len(self._entries))
        registry.gauge(
            "ses_registry_predicates",
            help="distinct live predicates in the shared bank",
        ).set(len(self._bank))
        registry.gauge(
            "ses_registry_prefix_groups",
            help="distinct start-gate structures sharing one evaluation",
        ).set(len(self._gate_members))

    def __repr__(self) -> str:
        return (f"PatternRegistry({len(self._entries)} patterns, "
                f"{len(self._bank)} predicates, "
                f"{len(self._gate_members)} prefix groups)")
