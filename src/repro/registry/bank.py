"""Cross-pattern predicate bank: dedup once, evaluate once.

Every registered pattern's prefilter predicates and start-transition
conditions are *interned* here.  Registering the same ``v.L = 'C'``
predicate a thousand times (the multi-tenant regime: many tenants watch
variations of the same vocabulary) costs one slot; every event is then
evaluated against each **distinct** predicate exactly once per push,
and each pattern's admission decision reduces to bitmask algebra over
the shared truth vector.

Two predicate kinds cover everything the Section 4.5 prefilter and the
automaton's start transitions need:

* ``("const", attribute, op, value)`` — a constant condition
  ``v.A φ C``, evaluated on the event alone;
* a *self* condition ``v.A φ v.A'`` (both sides the same variable),
  carried as its anchored :class:`~repro.core.conditions.Condition` and
  evaluated with the event on both sides.

Evaluation semantics match :class:`~repro.plan.prefilter
.VectorizedPrefilter` and :meth:`Condition.evaluate_events` bit for
bit: a missing attribute and an incomparable value both count as
``False``.

Slots are reference-counted.  Deregistering a pattern releases its
predicate ids; a slot whose count drops to zero is tombstoned and its
id recycled for the next intern, so long-lived registries with heavy
register/deregister churn keep the truth vector (a Python big-int,
bit ``pid``) bounded by the number of *live* distinct predicates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.conditions import OPERATORS, Condition
from ..core.events import Event

__all__ = ["PredicateBank", "mask_bits"]

#: Sentinel distinguishing "attribute absent" from any real value.
_MISSING = object()


def mask_bits(mask: int) -> Iterator[int]:
    """Iterate the set bit positions (predicate ids) of a bitmask."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class PredicateBank:
    """Reference-counted, deduplicated predicate slots.

    ``intern_*`` returns a stable predicate id (bit position); equal
    predicates share one id.  :meth:`truth` evaluates every live
    predicate against one event and returns the truth vector as a
    big-int; :meth:`truth_columns` is the columnar batch twin — one
    per-event bitmask (bit ``i`` = event ``i``) per predicate id, with
    each attribute column walked once over the whole batch.
    """

    def __init__(self):
        # Slot layout, indexed by predicate id.  A slot is either
        # ("const", attribute, op, value) or ("self", condition); a
        # tombstone is None.
        self._slots: List[object] = []
        self._refcounts: List[int] = []
        self._ids: Dict[object, int] = {}
        self._keys: Dict[int, object] = {}
        self._free: List[int] = []
        # Columnar layout for const predicates: attribute -> [pid, ...].
        self._by_attribute: Dict[str, List[int]] = {}
        self._self_ids: List[int] = []

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern_const(self, attribute: str, op: str, value) -> int:
        """Intern a constant predicate ``event[attribute] φ value``."""
        try:
            key = ("const", attribute, op, value)
            pid = self._ids.get(key)
        except TypeError:  # unhashable constant: fall back to identity
            key = ("const-id", attribute, op, id(value))
            pid = self._ids.get(key)
        if pid is not None:
            self._refcounts[pid] += 1
            return pid
        pid = self._claim(("const", attribute, op, value), key)
        self._by_attribute.setdefault(attribute, []).append(pid)
        return pid

    def intern_self(self, condition: Condition) -> int:
        """Intern a self condition (both sides bound to the new event)."""
        key = ("self", condition)
        pid = self._ids.get(key)
        if pid is not None:
            self._refcounts[pid] += 1
            return pid
        pid = self._claim(("self", condition), key)
        self._self_ids.append(pid)
        return pid

    def _claim(self, slot, key) -> int:
        if self._free:
            pid = self._free.pop()
            self._slots[pid] = slot
            self._refcounts[pid] = 1
        else:
            pid = len(self._slots)
            self._slots.append(slot)
            self._refcounts.append(1)
        self._ids[key] = pid
        self._keys[pid] = key
        return pid

    def release(self, pid: int) -> None:
        """Drop one reference; a zero-count slot is recycled."""
        self._refcounts[pid] -= 1
        if self._refcounts[pid] > 0:
            return
        slot = self._slots[pid]
        if slot[0] == "const":
            ids = self._by_attribute[slot[1]]
            ids.remove(pid)
            if not ids:
                del self._by_attribute[slot[1]]
        else:
            self._self_ids.remove(pid)
        del self._ids[self._keys.pop(pid)]
        self._slots[pid] = None
        self._free.append(pid)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def truth(self, event: Event) -> int:
        """Truth vector of every live predicate on one event (bit=pid)."""
        out = 0
        slots = self._slots
        operators = OPERATORS
        for attribute, ids in self._by_attribute.items():
            value = event.get(attribute, _MISSING)
            if value is _MISSING:
                continue
            for pid in ids:
                _, _, op, constant = slots[pid]
                try:
                    if operators[op](value, constant):
                        out |= 1 << pid
                except TypeError:
                    pass
        for pid in self._self_ids:
            if slots[pid][1].evaluate_events(event, event):
                out |= 1 << pid
        return out

    def truth_columns(self, events) -> List[int]:
        """Per-predicate event masks over a batch (bit ``i`` = event ``i``).

        The columnar twin of :meth:`truth`: each attribute column is
        walked once over the whole batch, mirroring
        :meth:`VectorizedPrefilter.admission_mask`'s evaluation order.
        """
        columns = [0] * len(self._slots)
        slots = self._slots
        operators = OPERATORS
        for attribute, ids in self._by_attribute.items():
            bit = 1
            for event in events:
                value = event.get(attribute, _MISSING)
                if value is not _MISSING:
                    for pid in ids:
                        _, _, op, constant = slots[pid]
                        try:
                            if operators[op](value, constant):
                                columns[pid] |= bit
                        except TypeError:
                            pass
                bit <<= 1
        for pid in self._self_ids:
            condition = slots[pid][1]
            bit = 1
            for event in events:
                if condition.evaluate_events(event, event):
                    columns[pid] |= bit
                bit <<= 1
        return columns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (referenced) predicate slots."""
        return len(self._slots) - len(self._free)

    def refcount(self, pid: int) -> int:
        return self._refcounts[pid]

    def describe(self) -> List[Tuple[int, str, int]]:
        """``(pid, text, refcount)`` rows for every live slot."""
        rows = []
        for pid, slot in enumerate(self._slots):
            if slot is None:
                continue
            if slot[0] == "const":
                text = f"{slot[1]} {slot[2]} {slot[3]!r}"
            else:
                text = repr(slot[1])
            rows.append((pid, text, self._refcounts[pid]))
        return rows

    def __repr__(self) -> str:
        return (f"PredicateBank({len(self)} live predicates, "
                f"{len(self._free)} recycled slots)")
