"""Poison-event quarantine: the dead-letter queue.

An event whose processing crashes a shard worker
:attr:`~repro.resilience.supervisor.Supervisor.quarantine_after` times
(default twice — once on first sight, once on replay after the restart)
is *poison*: deterministic input the matcher cannot survive.  Rather
than burning the whole restart budget on it, the supervisor removes the
event from the replay log and parks it here, together with the crash
evidence (the worker's flight-recorder dump, when one survived), and
the shard continues with the rest of the stream.

Entries serialise to JSON lines (``repro match --dead-letter out.jsonl``)
so poison events can be inspected, fixed and re-ingested offline.

Durability
----------
Dead-letter files are evidence — they must survive the very crashes
they document.  All writes go through :func:`atomic_append_jsonl`:

* **line-atomic** — each record is a single ``write()`` of one complete
  line followed by ``flush()`` + ``fsync()``, so a crash mid-write can
  truncate at most the line being written, never interleave two records
  or leave earlier lines unflushed in a userspace buffer;
* **bounded** — when the file would grow past a byte cap (the
  ``REPRO_DLQ_MAX_BYTES`` environment knob, or an explicit
  ``max_bytes=``), it is rotated to ``<path>.1`` (replacing any
  previous rotation) instead of growing without bound.  Readers that
  want the full history read ``<path>.1`` then ``<path>``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..core.events import Event

__all__ = ["QuarantinedEvent", "DeadLetterQueue", "atomic_append_jsonl",
           "rotated_path", "DLQ_MAX_BYTES_ENV"]

#: Environment knob capping dead-letter (and other jsonl-log) growth in
#: bytes; unset or empty means unbounded.
DLQ_MAX_BYTES_ENV = "REPRO_DLQ_MAX_BYTES"


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get(DLQ_MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{DLQ_MAX_BYTES_ENV} must be an integer byte count, "
            f"got {raw!r}") from None
    return value if value > 0 else None


def rotated_path(path: Union[str, Path]) -> Path:
    """Where :func:`atomic_append_jsonl` rotates a full log to."""
    path = Path(path)
    return path.with_name(path.name + ".1")


def atomic_append_jsonl(path: Union[str, Path], record: dict,
                        max_bytes: Optional[int] = None) -> Path:
    """Append ``record`` to a JSON-lines file, line-atomically.

    The serialised line is written with a single ``write()`` call and
    made durable with ``flush()`` + ``fsync()`` before the handle
    closes.  When ``max_bytes`` (default: the ``REPRO_DLQ_MAX_BYTES``
    environment knob) is set and the append would push the file past the
    cap, the current file is first renamed to ``<path>.1`` — replacing
    any previous rotation — so the log pair never holds more than
    roughly ``2 * max_bytes``.  Returns the path written to.

    Non-JSON attribute values are stringified (``default=str``): these
    logs are for inspection and re-ingestion, not lossless pickling.
    """
    path = Path(path)
    if max_bytes is None:
        max_bytes = _env_max_bytes()
    line = json.dumps(record, default=str) + "\n"
    data = line.encode("utf-8")
    if max_bytes is not None:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size and size + len(data) > max_bytes:
            os.replace(path, rotated_path(path))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    return path


class QuarantinedEvent:
    """One poison event plus the evidence of why it was quarantined."""

    __slots__ = ("shard", "seq", "event", "reason", "flight_dump", "crashes")

    def __init__(self, shard: int, seq: int, event: Optional[Event],
                 reason: str, flight_dump: Optional[dict] = None,
                 crashes: int = 0):
        self.shard = shard
        self.seq = seq
        self.event = event
        self.reason = reason
        self.flight_dump = flight_dump
        self.crashes = crashes

    def to_json(self) -> dict:
        """JSON-serialisable form (one dead-letter line)."""
        event = None
        if self.event is not None:
            event = {"ts": self.event.ts, "eid": self.event.eid,
                     "attrs": dict(self.event.attributes)}
        return {"shard": self.shard, "seq": self.seq, "event": event,
                "reason": self.reason, "crashes": self.crashes,
                "flight_dump": self.flight_dump}

    def __repr__(self) -> str:
        eid = self.event.eid if self.event is not None else None
        return (f"QuarantinedEvent(shard={self.shard}, seq={self.seq}, "
                f"eid={eid!r}, crashes={self.crashes})")


class DeadLetterQueue:
    """An append-only parking lot for quarantined events."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: List[QuarantinedEvent] = []

    def add(self, entry: QuarantinedEvent) -> None:
        self._entries.append(entry)

    @property
    def entries(self) -> List[QuarantinedEvent]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantinedEvent]:
        return iter(self._entries)

    def write_jsonl(self, path, max_bytes: Optional[int] = None) -> int:
        """Write one JSON line per entry; returns the number written.

        The file is rewritten from scratch (shutdown snapshot
        semantics: "exists and empty" is the scriptable signature of a
        clean run), each line in a single ``write()`` call, and the
        result fsynced before close so the evidence survives an
        immediately following crash.  ``max_bytes`` (default: the
        ``REPRO_DLQ_MAX_BYTES`` knob) caps the snapshot — when the cap
        would be crossed, the oldest entries are dropped and a
        ``truncated`` marker line leads the file.
        """
        if max_bytes is None:
            max_bytes = _env_max_bytes()
        lines = [json.dumps(entry.to_json(), default=str) + "\n"
                 for entry in self._entries]
        if max_bytes is not None:
            kept, budget = [], max_bytes
            for line in reversed(lines):
                if budget - len(line.encode("utf-8")) < 0:
                    break
                budget -= len(line.encode("utf-8"))
                kept.append(line)
            if len(kept) < len(lines):
                marker = json.dumps(
                    {"truncated": len(lines) - len(kept),
                     "reason": f"max_bytes={max_bytes}"}) + "\n"
                kept.append(marker)
            lines = list(reversed(kept))
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        return len(self._entries)

    def append_jsonl(self, path, entry: QuarantinedEvent,
                     max_bytes: Optional[int] = None) -> None:
        """Durably append one entry as it is quarantined (incremental
        spelling of :meth:`write_jsonl`, used by long-running serves)."""
        atomic_append_jsonl(path, entry.to_json(), max_bytes=max_bytes)

    def __repr__(self) -> str:
        return f"DeadLetterQueue({len(self._entries)} entries)"
