"""Poison-event quarantine: the dead-letter queue.

An event whose processing crashes a shard worker
:attr:`~repro.resilience.supervisor.Supervisor.quarantine_after` times
(default twice — once on first sight, once on replay after the restart)
is *poison*: deterministic input the matcher cannot survive.  Rather
than burning the whole restart budget on it, the supervisor removes the
event from the replay log and parks it here, together with the crash
evidence (the worker's flight-recorder dump, when one survived), and
the shard continues with the rest of the stream.

Entries serialise to JSON lines (``repro match --dead-letter out.jsonl``)
so poison events can be inspected, fixed and re-ingested offline.
"""

from __future__ import annotations

import json
from typing import Iterator, List, Optional

from ..core.events import Event

__all__ = ["QuarantinedEvent", "DeadLetterQueue"]


class QuarantinedEvent:
    """One poison event plus the evidence of why it was quarantined."""

    __slots__ = ("shard", "seq", "event", "reason", "flight_dump", "crashes")

    def __init__(self, shard: int, seq: int, event: Optional[Event],
                 reason: str, flight_dump: Optional[dict] = None,
                 crashes: int = 0):
        self.shard = shard
        self.seq = seq
        self.event = event
        self.reason = reason
        self.flight_dump = flight_dump
        self.crashes = crashes

    def to_json(self) -> dict:
        """JSON-serialisable form (one dead-letter line)."""
        event = None
        if self.event is not None:
            event = {"ts": self.event.ts, "eid": self.event.eid,
                     "attrs": dict(self.event.attributes)}
        return {"shard": self.shard, "seq": self.seq, "event": event,
                "reason": self.reason, "crashes": self.crashes,
                "flight_dump": self.flight_dump}

    def __repr__(self) -> str:
        eid = self.event.eid if self.event is not None else None
        return (f"QuarantinedEvent(shard={self.shard}, seq={self.seq}, "
                f"eid={eid!r}, crashes={self.crashes})")


class DeadLetterQueue:
    """An append-only parking lot for quarantined events."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: List[QuarantinedEvent] = []

    def add(self, entry: QuarantinedEvent) -> None:
        self._entries.append(entry)

    @property
    def entries(self) -> List[QuarantinedEvent]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantinedEvent]:
        return iter(self._entries)

    def write_jsonl(self, path) -> int:
        """Write one JSON line per entry; returns the number written.

        Attribute values that are not JSON types are stringified — the
        dead-letter file is for human inspection and re-ingestion, not a
        lossless pickle.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry.to_json(), default=str))
                handle.write("\n")
        return len(self._entries)

    def __repr__(self) -> str:
        return f"DeadLetterQueue({len(self._entries)} entries)"
