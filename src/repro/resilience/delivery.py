"""Durable delivery log: the WAL behind resumable match subscriptions.

The subscription hub (:mod:`repro.net.hub`) assigns every published
match a monotonic cursor and keeps a bounded in-memory replay ring.  The
ring alone cannot survive a process restart, and it cannot serve a
subscriber that reconnects after more matches than the ring holds — the
:class:`DeliveryLog` is the spill: every published entry is appended
here *line-atomically* (via
:func:`~repro.resilience.quarantine.atomic_append_jsonl` — single
``write()``, ``flush()`` + ``fsync()``) before delivery, so

* a subscriber resuming from any cursor can be backfilled from disk
  (``entries_after``), however long it was away;
* a restarted server reloads the log, continues the cursor sequence
  where it stopped, and — because entries carry the content-derived
  :func:`~repro.obs.lineage.match_id` — suppresses re-publication of
  matches the pre-restart process already delivered (exactly-once
  across restarts).

Growth is bounded the same way the dead-letter queue is: past
``max_bytes`` (or the ``REPRO_DLQ_MAX_BYTES`` environment knob) the
file rotates to ``<path>.1``; readers walk the rotation first, so a
resume spanning the rotation boundary still sees a gap-free sequence as
long as the cursor lies within the retained window.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .quarantine import atomic_append_jsonl, rotated_path

__all__ = ["DeliveryLog"]


class DeliveryLog:
    """Append-only JSON-lines log of published matches, keyed by cursor.

    Records are plain dicts; the only required key is ``"seq"`` (the
    hub's monotonic cursor).  The log object itself is cheap — it holds
    no file handle between appends and re-reads the file on scans, so
    several processes may *read* it concurrently with one writer.
    """

    def __init__(self, path: Union[str, Path],
                 max_bytes: Optional[int] = None):
        self.path = Path(path)
        self.max_bytes = max_bytes

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Durably append one published-match record."""
        if "seq" not in record:
            raise ValueError("delivery log records must carry a 'seq'")
        atomic_append_jsonl(self.path, record, max_bytes=self.max_bytes)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _files(self) -> List[Path]:
        files = []
        rotation = rotated_path(self.path)
        if rotation.exists():
            files.append(rotation)
        if self.path.exists():
            files.append(self.path)
        return files

    def __iter__(self) -> Iterator[Dict]:
        """All retained records in cursor order (rotation first).

        A torn final line — the signature of a crash mid-append — is
        skipped rather than raised: everything before it was fsynced.
        """
        for path in self._files():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        continue

    def load(self) -> List[Dict]:
        """All retained records as a list."""
        return list(self)

    def entries_after(self, cursor: int) -> List[Dict]:
        """Retained records with ``seq`` strictly above ``cursor``."""
        return [record for record in self
                if record.get("seq", -1) > cursor]

    def last_seq(self) -> int:
        """Highest cursor on disk (``-1`` for an empty/missing log)."""
        last = -1
        for record in self:
            seq = record.get("seq", -1)
            if seq > last:
                last = seq
        return last

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"DeliveryLog({str(self.path)!r})"
