"""Shard supervision: restart, replay, quarantine.

A :class:`Supervisor` turns :class:`~repro.parallel.sharded.
ShardedStreamMatcher`'s crash *detection* (liveness polling plus worker
error reports) into crash *recovery*:

1. a dead shard is respawned with exponential backoff + deterministic
   jitter, under a bounded per-shard restart budget;
2. the replacement worker is seeded with the shard's last checkpoint
   (see :mod:`repro.resilience.checkpoint`) and the parent replays the
   write-ahead log of events routed since that checkpoint — execution
   is deterministic in the event sequence, so the worker reconstructs
   the exact pre-crash state;
3. matches are delivered **exactly once**: every match message carries
   the sequence number of the event that produced it, and the parent
   drops replayed matches at or below the shard's high-water mark;
4. an event that crashes its worker ``quarantine_after`` times is
   *poison*: it is removed from the replay log, parked in the
   :class:`~repro.resilience.quarantine.DeadLetterQueue` with the crash
   evidence, and the shard continues without it.

The supervisor binds to exactly one matcher
(``ShardedStreamMatcher(..., supervisor=Supervisor(...))``) and drives
recovery from inside the matcher's own queue loops — no background
thread, so supervision adds zero overhead until something actually
dies.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..parallel.codec import decode_event
from ..parallel.errors import WorkerCrashed
from .checkpoint import EventLog, ShardCheckpoint
from .quarantine import DeadLetterQueue, QuarantinedEvent

__all__ = ["RestartPolicy", "Supervisor", "ShardRuntime"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RestartPolicy:
    """Exponential backoff with bounded budget and deterministic jitter.

    ``delay(shard, attempt)`` for attempt ``n`` (1-based) is
    ``min(backoff * multiplier**(n-1), max_backoff)`` scaled by a jitter
    factor drawn from a PRNG seeded with ``(seed, shard, attempt)`` —
    fully reproducible for a fixed seed, yet de-synchronised across
    shards so a correlated failure does not respawn every worker in
    lockstep.
    """

    #: Restarts allowed per shard before the matcher gives up.
    max_restarts: int = 5
    #: First backoff delay, seconds.
    backoff: float = 0.05
    #: Backoff growth factor per successive restart.
    multiplier: float = 2.0
    #: Backoff ceiling, seconds.
    max_backoff: float = 2.0
    #: Jitter amplitude as a fraction of the delay (0 disables).
    jitter: float = 0.1
    #: Jitter seed (also reachable via ``FaultPlan.seed`` in chaos runs).
    seed: int = 0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, shard: int, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based) of ``shard``."""
        base = min(self.backoff * (self.multiplier ** (attempt - 1)),
                   self.max_backoff)
        if not self.jitter or not base:
            return base
        # Composed int seed (tuple seeding was removed in Python 3.11).
        rng = random.Random(self.seed * 1_000_003 + shard * 8_191 + attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class ShardRuntime:
    """Per-worker resilience config, pickled into the worker process.

    ``seq_value`` is a lock-free shared integer the worker stamps with
    the sequence number it is *about to* process — the parent reads it
    after a hard kill (``os._exit``/``SIGKILL``), where no error report
    identifies the in-flight event.
    """

    __slots__ = ("checkpoint_every", "start_seq", "state", "seq_value",
                 "faults", "guard")

    def __init__(self, checkpoint_every: int = 0, start_seq: int = 0,
                 state: Optional[bytes] = None, seq_value=None,
                 faults=(), guard=None):
        self.checkpoint_every = checkpoint_every
        self.start_seq = start_seq
        self.state = state
        self.seq_value = seq_value
        self.faults = list(faults)
        self.guard = guard

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class _ShardState:
    """Parent-side recovery state for one shard."""

    __slots__ = ("wal", "checkpoint", "restarts", "crash_counts",
                 "quarantined", "delivered_seq", "generation")

    def __init__(self):
        self.wal = EventLog()
        self.checkpoint: Optional[ShardCheckpoint] = None
        self.restarts = 0
        self.crash_counts: Dict[int, int] = {}
        self.quarantined: Set[int] = set()
        self.delivered_seq = 0
        self.generation = 0


class Supervisor:
    """Restart/replay/quarantine policy for one sharded stream matcher.

    Parameters
    ----------
    restart:
        The :class:`RestartPolicy` (default: 5 restarts per shard,
        50 ms initial backoff doubling to 2 s, 10 % jitter).
    checkpoint_every:
        Workers checkpoint their matcher state every this many
        processed events (the WAL replay on recovery is at most this
        long, plus events routed since the last checkpoint arrived).
    quarantine_after:
        Crashes attributed to the *same event* before it is declared
        poison and dead-lettered.  The default 2 means: crash once,
        restart, crash again on replay of the same event → quarantine.
    dead_letter:
        The :class:`~repro.resilience.quarantine.DeadLetterQueue` to
        park poison events in (one is created when omitted).
    faults:
        Optional :class:`~repro.resilience.chaos.FaultPlan` adopted by
        the bound matcher (chaos testing).
    """

    def __init__(self, restart: Optional[RestartPolicy] = None,
                 checkpoint_every: int = 64, quarantine_after: int = 2,
                 dead_letter: Optional[DeadLetterQueue] = None,
                 faults=None):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.restart = restart if restart is not None else RestartPolicy()
        self.checkpoint_every = checkpoint_every
        self.quarantine_after = quarantine_after
        self.dead_letter = (dead_letter if dead_letter is not None
                            else DeadLetterQueue())
        self.faults = faults
        self.restarts_total = 0
        self.quarantined_total = 0
        self.backoff_seconds_total = 0.0
        self.failed = False
        self._matcher = None
        self._shards: Dict[int, _ShardState] = {}

    # ------------------------------------------------------------------
    # Binding (called by ShardedStreamMatcher.__init__)
    # ------------------------------------------------------------------
    def bind(self, matcher) -> None:
        if self._matcher is not None:
            raise RuntimeError("a Supervisor supervises exactly one matcher")
        self._matcher = matcher
        self._shards = {shard: _ShardState()
                        for shard in range(matcher.n_shards)}

    # ------------------------------------------------------------------
    # Bookkeeping hooks (called from the matcher's hot paths)
    # ------------------------------------------------------------------
    def record_event(self, shard: int, seq: int, wire) -> None:
        """Log a routed event before it is enqueued (write-ahead)."""
        self._shards[shard].wal.append(seq, wire)

    def record_checkpoint(self, shard: int, seq: int,
                          payload: bytes) -> None:
        """Adopt a worker checkpoint; the WAL is trimmed through it."""
        state = self._shards[shard]
        state.checkpoint = ShardCheckpoint(seq, payload)
        state.wal.trim_through(seq)

    def should_deliver(self, shard: int, seq: int) -> bool:
        """Exactly-once filter for match messages (replay dedup)."""
        state = self._shards[shard]
        if seq <= state.delivered_seq:
            return False
        state.delivered_seq = seq
        return True

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def on_crash(self, shard: int, reason: Optional[str] = None,
                 dump: Optional[dict] = None,
                 seq: Optional[int] = None) -> None:
        """Recover one dead shard: quarantine, respawn, replay.

        Raises :class:`~repro.parallel.errors.WorkerCrashed` when the
        shard's restart budget is exhausted (the matcher is stopped
        first, so no worker outlives the failure).
        """
        matcher = self._matcher
        state = self._shards[shard]
        generation = state.generation
        process = matcher._processes[shard]
        process.join(timeout=5.0)
        if seq is None:
            value = matcher._seq_values[shard]
            seq = int(value.value) if value is not None else 0
        if reason is None:
            reason = f"worker died (exit code {process.exitcode})"
        logger.warning("shard %d crashed at seq %d: %s", shard, seq, reason)

        # Adopt in-flight messages (other shards' matches, late
        # checkpoints) before anything is respawned.  The dead worker's
        # own error report may be among them: handling it recurses into
        # on_crash with the *authoritative* crash attribution, and the
        # generation bump tells this frame the recovery already ran.
        matcher._drain()
        if state.generation != generation:
            return

        if seq:
            count = state.crash_counts.get(seq, 0) + 1
            state.crash_counts[seq] = count
            if (count >= self.quarantine_after
                    and seq not in state.quarantined):
                self._quarantine(shard, seq, reason, dump, count)

        if state.restarts >= self.restart.max_restarts:
            self.failed = True
            matcher.stop()
            raise WorkerCrashed(
                f"stream shard {shard} exhausted its restart budget "
                f"({self.restart.max_restarts}): {reason}",
                flight_dump=dump)
        state.restarts += 1
        self.restarts_total += 1
        delay = self.restart.delay(shard, state.restarts)
        self.backoff_seconds_total += delay
        self._publish_restart(matcher, delay)
        if delay:
            time.sleep(delay)

        # A kill fault fires once: strip the one that just fired (its
        # trigger seq is the crash attribution) so the replay gets past
        # it.  Faults that did not cause this crash stay armed.
        faults = matcher._shard_faults.get(shard)
        if faults:
            for index, fault in enumerate(faults):
                if fault[1] == "kill" and fault[0] == seq:
                    del faults[index]
                    break

        state.generation += 1
        generation = state.generation
        start_seq = state.checkpoint.seq if state.checkpoint else 0
        payload = state.checkpoint.payload if state.checkpoint else None
        matcher._respawn(shard, state=payload, start_seq=start_seq)
        logger.info(
            "shard %d restarted (attempt %d/%d): checkpoint seq %d, "
            "replaying %d event(s)", shard, state.restarts,
            self.restart.max_restarts, start_seq,
            len(state.wal.entries_after(start_seq)))

        # Replay the WAL on top of the checkpoint.  A crash during
        # replay recurses into on_crash (via the matcher's liveness
        # checks), which replays the tail itself — the generation
        # counter tells this frame to stand down.
        for entry_seq, wire in state.wal.entries_after(start_seq):
            if entry_seq in state.quarantined:
                continue
            matcher._put(shard, ("e", entry_seq, wire))
            if state.generation != generation:
                return
        # Re-issue an in-progress barrier the dead worker never acked.
        if shard in matcher._barrier_pending:
            if matcher._barrier == "flush":
                matcher._put(shard, ("flush", matcher._flush_seq))
            elif matcher._barrier == "close":
                matcher._put(shard, ("close",))

    def _quarantine(self, shard: int, seq: int, reason: str,
                    dump: Optional[dict], count: int) -> None:
        state = self._shards[shard]
        wire = state.wal.find(seq)
        event = decode_event(wire) if wire is not None else None
        entry = QuarantinedEvent(shard, seq, event, reason,
                                 flight_dump=dump, crashes=count)
        self.dead_letter.add(entry)
        state.quarantined.add(seq)
        self.quarantined_total += 1
        matcher = self._matcher
        if matcher.obs is not None:
            matcher.obs.registry.counter(
                "ses_quarantined_events",
                help="poison events routed to the dead-letter queue",
            ).inc()
            lineage = matcher.obs.lineage
            if lineage is not None and event is not None:
                # Quarantined events are tail-sampled unconditionally:
                # the lineage record survives even at sample rate 0.
                lineage.note_quarantined(event, shard=shard, seq=seq,
                                         reason=reason)
        logger.error(
            "shard %d: event seq %d quarantined after %d crash(es): %s",
            shard, seq, count, reason)

    def _publish_restart(self, matcher, delay: float) -> None:
        if matcher.obs is None:
            return
        registry = matcher.obs.registry
        registry.counter(
            "ses_restarts_total",
            help="supervised shard worker restarts").inc()
        registry.counter(
            "ses_restart_backoff_seconds",
            help="cumulative restart backoff delay").inc(delay)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once any shard has restarted or quarantined an event."""
        return self.restarts_total > 0 or self.quarantined_total > 0

    def restarts_of(self, shard: int) -> int:
        return self._shards[shard].restarts

    def report(self) -> dict:
        """Supervision summary for the ``/healthz`` payload."""
        return {
            "restarts_total": self.restarts_total,
            "quarantined_events": self.quarantined_total,
            "backoff_seconds_total": round(self.backoff_seconds_total, 6),
            "restart_budget": self.restart.max_restarts,
            "failed": self.failed,
            "shards": {shard: {"restarts": st.restarts,
                               "checkpoint_seq": (st.checkpoint.seq
                                                  if st.checkpoint else 0),
                               "wal_depth": len(st.wal),
                               "quarantined": sorted(st.quarantined)}
                       for shard, st in self._shards.items()},
        }

    def __repr__(self) -> str:
        return (f"Supervisor(restarts={self.restarts_total}, "
                f"quarantined={self.quarantined_total}, "
                f"failed={self.failed})")
