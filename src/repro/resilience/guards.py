"""Runtime resource guards: bounded ceilings on executor state.

Section 4.4 of the paper bounds the instance population at
``O(k · (|V1|-1)! · k^(W·|V1|))`` once group variables enter the picture
— in a long-running service one adversarial pattern/input pair can grow
Ω until the process OOMs.  A :class:`ResourceGuard` puts configurable
ceilings on the executor's live state and enforces one of three
policies when a ceiling is crossed:

``raise``
    Raise a typed :class:`ResourceExhausted` naming the resource, the
    ceiling and the observed value.  The default: fail fast, let the
    supervisor (or the caller) decide.
``shed``
    Drop the oldest-start instances until the executor is back under
    the ceiling.  Sheds *potential* matches (the oldest, closest to
    expiry) but keeps the stream alive; counted in
    ``ses_shed_instances``.
``degrade``
    First drop instances whose group variables exceed
    ``degrade_arity`` bindings — bounding group arity collapses the
    ``k^(W·|V1|)`` term to a constant — then shed oldest-start
    instances if that was not enough.

The executor checks its guard behind a single precomputed ``is None``
test per event (the same idiom the observability and flight-recorder
hooks use), so the disabled path is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["GuardConfig", "ResourceGuard", "ResourceExhausted",
           "DEFAULT_INSTANCE_BYTES", "DEFAULT_EVENT_BYTES"]

#: Rough per-instance heap cost (state ref + buffer shell), used to turn
#: an RSS ceiling into an instance ceiling in :meth:`GuardConfig.from_bounds`.
DEFAULT_INSTANCE_BYTES = 512

#: Rough heap cost of one buffered event binding (dict entry + tuple slot).
DEFAULT_EVENT_BYTES = 256

#: Valid breach policies.
POLICIES = ("raise", "shed", "degrade")


class ResourceExhausted(RuntimeError):
    """A guarded executor crossed a configured resource ceiling.

    Attributes
    ----------
    resource:
        Which ceiling tripped: ``"instances"``, ``"buffer_bytes"`` or
        ``"event_seconds"``.
    limit / observed:
        The configured ceiling and the value that crossed it.
    """

    def __init__(self, resource: str, limit, observed):
        super().__init__(
            f"resource guard tripped: {resource} = {observed} exceeds "
            f"ceiling {limit}")
        self.resource = resource
        self.limit = limit
        self.observed = observed

    def __reduce__(self):
        # Survive the pickle trip from a shard worker back to the parent.
        return (type(self), (self.resource, self.limit, self.observed))


@dataclass(frozen=True)
class GuardConfig:
    """Ceilings and breach policy for a :class:`ResourceGuard`.

    All ceilings are optional; ``None`` disables the corresponding
    check.  The config is immutable and picklable, so it ships to shard
    workers unchanged.
    """

    #: Ceiling on live automaton instances (|Ω|) per executor.
    max_instances: Optional[int] = None
    #: Ceiling on the estimated match-buffer bytes per executor.
    max_buffer_bytes: Optional[int] = None
    #: Ceiling on one event's wall-clock processing time, in seconds.
    max_event_seconds: Optional[float] = None
    #: Breach policy: ``"raise"``, ``"shed"`` or ``"degrade"``.
    policy: str = "raise"
    #: Group-variable arity bound used by the ``degrade`` policy.
    degrade_arity: int = 4
    #: Estimated bytes of one buffered event (buffer-bytes ceiling).
    bytes_per_event: int = DEFAULT_EVENT_BYTES

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown guard policy {self.policy!r}; expected one of "
                f"{POLICIES}")
        if (self.max_instances is None and self.max_buffer_bytes is None
                and self.max_event_seconds is None):
            raise ValueError("guard config enables no ceiling")
        for name in ("max_instances", "max_buffer_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.max_event_seconds is not None and self.max_event_seconds <= 0:
            raise ValueError("max_event_seconds must be > 0")
        if self.degrade_arity < 1:
            raise ValueError("degrade_arity must be >= 1")

    @classmethod
    def from_bounds(cls, pattern, window: int, max_rss_bytes: int,
                    policy: str = "raise",
                    instance_bytes: int = DEFAULT_INSTANCE_BYTES,
                    **overrides) -> "GuardConfig":
        """Derive ceilings from the Section 4.4 analysis and an RSS budget.

        The instance ceiling is the *smaller* of the theoretical
        per-pattern bound (:func:`repro.complexity.bounds.
        pattern_instance_bound`) and what ``max_rss_bytes`` can hold at
        ``instance_bytes`` apiece — so the guard trips before the
        process approaches the memory ceiling even when the theoretical
        bound is astronomically larger (the ``k > 1`` group-variable
        case).
        """
        from ..complexity.bounds import pattern_instance_bound
        if max_rss_bytes < instance_bytes:
            raise ValueError("max_rss_bytes smaller than one instance")
        theoretical = pattern_instance_bound(pattern, window)
        affordable = max_rss_bytes // instance_bytes
        config = cls(max_instances=max(1, min(theoretical, affordable)),
                     max_buffer_bytes=max_rss_bytes,
                     policy=policy)
        return replace(config, **overrides) if overrides else config


class ResourceGuard:
    """Enforces a :class:`GuardConfig` against one or more executors.

    One guard may be shared by every per-key executor of a partitioned
    stream shard; ceilings apply per executor (the unit the Section 4.4
    bounds describe — instances spawned from the start events of one
    partition).  The guard keeps plain-int trip statistics always, and
    mirrors them into registry counters when built with a registry.
    """

    __slots__ = ("config", "trips", "shed_total", "degraded_total",
                 "_shed_counter", "_degraded_counter", "_trip_counter")

    def __init__(self, config: GuardConfig, registry=None):
        self.config = config
        self.trips = 0
        self.shed_total = 0
        self.degraded_total = 0
        if registry is None:
            self._shed_counter = None
            self._degraded_counter = None
            self._trip_counter = None
        else:
            self._shed_counter = registry.counter(
                "ses_shed_instances",
                help="instances dropped by the shed/degrade guard policy")
            self._degraded_counter = registry.counter(
                "ses_degraded_instances_total",
                help="over-arity group instances dropped by the degrade "
                     "policy")
            self._trip_counter = registry.counter(
                "ses_guard_trips_total",
                help="resource-guard ceiling breaches")

    @property
    def time_limited(self) -> bool:
        """True when the per-event time ceiling is enabled (the executor
        only pays for ``perf_counter`` calls in that case)."""
        return self.config.max_event_seconds is not None

    def stats(self) -> dict:
        """Plain-dict trip statistics (travels in shard flush acks)."""
        return {"trips": self.trips, "shed": self.shed_total,
                "degraded": self.degraded_total}

    # ------------------------------------------------------------------
    # Enforcement (called by the executor once per event)
    # ------------------------------------------------------------------
    def check(self, executor, event, elapsed: Optional[float]) -> None:
        """Check every enabled ceiling after ``executor`` processed
        ``event``; apply the policy on breach."""
        config = self.config
        omega = executor._omega
        if config.max_instances is not None:
            size = len(omega)
            if size > config.max_instances:
                self._breach(executor, "instances", config.max_instances,
                             size)
        if config.max_buffer_bytes is not None:
            estimate = (sum(len(i.buffer) for i in omega)
                        * config.bytes_per_event)
            if estimate > config.max_buffer_bytes:
                self._breach(executor, "buffer_bytes",
                             config.max_buffer_bytes, estimate)
        if (elapsed is not None and config.max_event_seconds is not None
                and elapsed > config.max_event_seconds):
            self._breach(executor, "event_seconds",
                         config.max_event_seconds, elapsed)

    def _breach(self, executor, resource: str, limit, observed) -> None:
        self.trips += 1
        if self._trip_counter is not None:
            self._trip_counter.inc()
        if self.config.policy == "raise":
            raise ResourceExhausted(resource, limit, observed)
        if self.config.policy == "degrade":
            self._degrade(executor)
        if resource == "instances":
            target = self.config.max_instances
        elif resource == "buffer_bytes":
            # Shed down to the event count the byte ceiling affords.
            target = None
        else:
            # Time breach under shed/degrade: halve the population.
            target = max(1, len(executor._omega) // 2)
        self._shed(executor, resource, target)

    def _degrade(self, executor) -> None:
        """Drop instances whose group variables exceed the arity bound."""
        arity = self.config.degrade_arity
        survivors = []
        dropped = 0
        for instance in executor._omega:
            buffer = instance.buffer
            over = any(variable.is_group
                       and len(buffer.events_of(variable)) > arity
                       for variable in instance.state)
            if over:
                dropped += 1
            else:
                survivors.append(instance)
        if dropped:
            executor._omega = survivors
            self.degraded_total += dropped
            if self._degraded_counter is not None:
                self._degraded_counter.inc(dropped)

    def _shed(self, executor, resource: str, target: Optional[int]) -> None:
        """Drop oldest-start instances until back under the ceiling.

        Fresh start instances (empty buffer, ``min_ts is None``) are
        kept — they are one dict away from free and dropping them would
        blind the matcher to genuinely new matches.
        """
        config = self.config
        omega = executor._omega

        def under_ceiling() -> bool:
            if resource == "instances":
                return len(omega) <= target
            if resource == "buffer_bytes":
                return (sum(len(i.buffer) for i in omega)
                        * config.bytes_per_event) <= config.max_buffer_bytes
            return len(omega) <= target

        if under_ceiling():
            return
        # Oldest starts first; empty-buffer instances sort last (kept).
        omega.sort(key=lambda i: (i.buffer.min_ts is None, i.buffer.min_ts
                                  if i.buffer.min_ts is not None else 0))
        shed = 0
        while omega and not under_ceiling():
            if omega[0].buffer.min_ts is None:
                break  # only fresh starts left
            omega.pop(0)
            shed += 1
        if shed:
            self.shed_total += shed
            if self._shed_counter is not None:
                self._shed_counter.inc(shed)

    # ------------------------------------------------------------------
    # Executor entry point (keeps the executor free of timing branches)
    # ------------------------------------------------------------------
    def guarded_feed(self, executor, event, allow_start=True):
        """Run one ``feed`` under this guard, timing it only when the
        per-event time ceiling is enabled."""
        if self.config.max_event_seconds is None:
            accepted = executor._feed(event, allow_start)
            self.check(executor, event, None)
            return accepted
        start = time.perf_counter()
        accepted = executor._feed(event, allow_start)
        self.check(executor, event, time.perf_counter() - start)
        return accepted

    def __repr__(self) -> str:
        return (f"ResourceGuard({self.config.policy!r}, trips={self.trips}, "
                f"shed={self.shed_total})")
