"""Shard checkpoints and the in-memory write-ahead log.

Recovery state per shard is two complementary pieces:

* a **checkpoint** — the worker pickles its
  :meth:`~repro.stream.partitioned.PartitionedContinuousMatcher.state_dict`
  every ``checkpoint_every`` processed events and ships the bytes to the
  parent (a ``("ckpt", shard, seq, payload)`` message).  The payload
  captures open automaton instances, match buffers, reported matches /
  used events (so overlap suppression survives a restart) and the
  last-processed timestamp;
* a **write-ahead log** — the parent appends every routed event's wire
  tuple *before* enqueueing it, and trims the log through ``seq`` when a
  checkpoint for ``seq`` arrives.  Replaying the log on top of the
  checkpoint reconstructs the exact pre-crash executor state, because
  execution is deterministic in the event sequence.

Matches are made exactly-once by sequence-number dedup on the parent
(see :class:`~repro.resilience.supervisor.Supervisor`), not by anything
stored here.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import List, Optional, Tuple

__all__ = ["ShardCheckpoint", "EventLog", "snapshot_state", "restore_state"]


def snapshot_state(matcher) -> bytes:
    """Pickle a matcher's ``state_dict()`` into a checkpoint payload."""
    return pickle.dumps(matcher.state_dict(), protocol=pickle.HIGHEST_PROTOCOL)


def restore_state(matcher, payload: bytes) -> None:
    """Load a checkpoint payload back into a fresh matcher."""
    matcher.load_state(pickle.loads(payload))


class ShardCheckpoint:
    """The latest checkpoint of one shard: ``(seq, pickled state)``."""

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload: bytes):
        self.seq = seq
        self.payload = payload

    def __repr__(self) -> str:
        return f"ShardCheckpoint(seq={self.seq}, {len(self.payload)} bytes)"


class EventLog:
    """In-memory WAL of ``(seq, event wire)`` entries for one shard.

    Entries arrive in strictly increasing ``seq`` order (the parent
    appends under its own routing loop), so trims and range scans are
    simple deque walks.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: deque = deque()

    def append(self, seq: int, wire) -> None:
        self._entries.append((seq, wire))

    def trim_through(self, seq: int) -> None:
        """Drop entries with ``seq`` at or below the checkpointed seq."""
        entries = self._entries
        while entries and entries[0][0] <= seq:
            entries.popleft()

    def entries_after(self, seq: int) -> List[Tuple[int, object]]:
        """Entries with sequence number above ``seq``, in order."""
        return [entry for entry in self._entries if entry[0] > seq]

    def find(self, seq: int) -> Optional[object]:
        """The wire tuple logged for ``seq`` (``None`` if trimmed)."""
        for entry_seq, wire in self._entries:
            if entry_seq == seq:
                return wire
            if entry_seq > seq:
                break
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        if not self._entries:
            return "EventLog(empty)"
        return (f"EventLog({len(self._entries)} entries, "
                f"seq {self._entries[0][0]}..{self._entries[-1][0]})")
