"""Fault tolerance for the streaming runtime.

The paper's Section 4.4 complexity analysis makes unbounded resource
growth a real failure mode, and process-based sharding
(:class:`~repro.parallel.sharded.ShardedStreamMatcher`) adds worker
death to the list.  This package supplies the production answers:

* :class:`Supervisor` / :class:`RestartPolicy` — supervised shard
  restart with checkpoint/WAL replay and exactly-once match delivery;
* :class:`DeadLetterQueue` — poison-event quarantine with crash
  evidence attached;
* :class:`GuardConfig` / :class:`ResourceGuard` /
  :class:`ResourceExhausted` — runtime ceilings on executor state,
  grounded in :mod:`repro.complexity.bounds`;
* :class:`FaultPlan` — deterministic fault injection for chaos tests;
* :class:`DeliveryLog` — the durable write-ahead log behind resumable
  push subscriptions (:mod:`repro.net`), sharing the dead-letter
  queue's line-atomic append and rotation machinery.

See ``docs/resilience.md`` for the supervision tree, checkpoint format
and guard-policy semantics, and ``docs/serving.md`` for how the
delivery log backs ``Last-Event-ID`` resume.
"""

from .chaos import FaultInjector, FaultPlan, InjectedFault
from .checkpoint import EventLog, ShardCheckpoint, restore_state, snapshot_state
from .delivery import DeliveryLog
from .guards import GuardConfig, ResourceExhausted, ResourceGuard
from .quarantine import (DLQ_MAX_BYTES_ENV, DeadLetterQueue, QuarantinedEvent,
                         atomic_append_jsonl, rotated_path)
from .supervisor import RestartPolicy, ShardRuntime, Supervisor

__all__ = [
    "Supervisor", "RestartPolicy", "ShardRuntime",
    "GuardConfig", "ResourceGuard", "ResourceExhausted",
    "FaultPlan", "FaultInjector", "InjectedFault",
    "DeadLetterQueue", "QuarantinedEvent",
    "atomic_append_jsonl", "rotated_path", "DLQ_MAX_BYTES_ENV",
    "DeliveryLog",
    "EventLog", "ShardCheckpoint", "snapshot_state", "restore_state",
]
