"""Deterministic fault injection for the sharded streaming runtime.

A :class:`FaultPlan` is an immutable, picklable schedule of faults keyed
by ``(shard, seq)`` — the per-shard 1-based sequence number the parent
stamps on every routed event.  Because shard routing and sequence
numbering are deterministic for a fixed input and worker count, a plan
reproduces the *same* crash at the *same* event on every run, which is
what lets ``tests/test_resilience.py`` assert exact match-set
equivalence between a faulted supervised run and a fault-free serial
run.

Three fault kinds:

``kill``
    Terminate the worker just before it processes the event — either a
    hard ``os._exit`` (no error report, no flight dump; the parent
    detects the death by liveness polling) or a raised
    :class:`InjectedFault` (the worker ships its error report and
    flight dump first).  The supervisor strips a kill fault once it has
    fired, so a restarted shard replays past the kill point.
``corrupt``
    Replace the event's attribute values (except the partition
    attribute, which the worker needs for routing) with a poison object
    whose comparison raises.  Corruption is re-applied deterministically
    on replay, so the same event crashes the restarted worker again —
    the double-crash signature that routes it to the dead-letter queue.
``delay``
    Sleep before processing the event (backpressure / slow-shard
    scenarios).
"""

from __future__ import annotations

import os
import time
from typing import Optional, Tuple

from ..core.events import Event

__all__ = ["FaultPlan", "FaultInjector", "InjectedFault"]

#: Exit code used by hard-kill faults (distinguishable from SIGKILL in
#: worker post-mortems).
KILL_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


class _ChaosPoison:
    """Attribute value that detonates when a condition evaluates it."""

    __slots__ = ()

    def __eq__(self, other):
        raise InjectedFault("corrupted attribute value compared")

    def __ne__(self, other):
        raise InjectedFault("corrupted attribute value compared")

    def __lt__(self, other):
        raise InjectedFault("corrupted attribute value compared")

    def __gt__(self, other):
        raise InjectedFault("corrupted attribute value compared")

    def __hash__(self):
        return 0

    def __repr__(self):
        return "<poison>"


class FaultPlan:
    """An immutable schedule of injected faults.

    Build fluently — every method returns a new plan::

        plan = (FaultPlan(seed=7)
                .kill(0, at_seq=10)            # hard-kill shard 0
                .kill(1, at_seq=4, mode="raise")
                .corrupt(2, at_seq=5)          # poison event 5 of shard 2
                .delay(0, at_seq=20, seconds=0.1))

    ``seed`` feeds the supervisor's restart-backoff jitter so a chaos
    run is reproducible end to end.
    """

    __slots__ = ("seed", "_faults")

    def __init__(self, seed: int = 0, _faults: Tuple = ()):
        self.seed = seed
        self._faults = tuple(_faults)

    def _extend(self, fault) -> "FaultPlan":
        return FaultPlan(self.seed, self._faults + (fault,))

    def kill(self, shard: int, at_seq: int,
             mode: str = "exit") -> "FaultPlan":
        """Kill ``shard`` just before it processes event ``at_seq``."""
        if mode not in ("exit", "raise"):
            raise ValueError(f"unknown kill mode {mode!r}")
        return self._extend((shard, at_seq, "kill", mode))

    def corrupt(self, shard: int, at_seq: int) -> "FaultPlan":
        """Poison the attribute values of event ``at_seq`` on ``shard``."""
        return self._extend((shard, at_seq, "corrupt"))

    def delay(self, shard: int, at_seq: int,
              seconds: float) -> "FaultPlan":
        """Sleep ``seconds`` before processing event ``at_seq``."""
        if seconds < 0:
            raise ValueError("delay must be >= 0")
        return self._extend((shard, at_seq, "delay", seconds))

    def for_shard(self, shard: int) -> list:
        """The mutable per-shard fault list handed to one worker.

        Entries are ``(at_seq, kind, *params)`` tuples; the supervisor
        owns the parent-side copy and strips kill faults as they fire.
        """
        return [fault[1:] for fault in self._faults if fault[0] == shard]

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, {len(self._faults)} faults)"


class FaultInjector:
    """Worker-side executor of one shard's fault list.

    ``before(seq, event)`` is called once per dequeued event and returns
    the (possibly corrupted) event to process; kill faults never return.
    """

    __slots__ = ("_faults", "_spare_attribute")

    def __init__(self, faults, spare_attribute: Optional[str] = None):
        self._faults = list(faults)
        self._spare_attribute = spare_attribute

    def before(self, seq: int, event: Event) -> Event:
        for fault in self._faults:
            if fault[0] != seq:
                continue
            kind = fault[1]
            if kind == "kill":
                if fault[2] == "exit":
                    os._exit(KILL_EXIT_CODE)
                raise InjectedFault(
                    f"injected kill at seq {seq}")
            if kind == "delay":
                time.sleep(fault[2])
            elif kind == "corrupt":
                event = self._poison(event)
        return event

    def _poison(self, event: Event) -> Event:
        poison = _ChaosPoison()
        attrs = {name: (value if name == self._spare_attribute else poison)
                 for name, value in event.attributes.items()}
        return Event(ts=event.ts, attrs=attrs, eid=event.eid)

    def __repr__(self) -> str:
        return f"FaultInjector({len(self._faults)} faults)"
