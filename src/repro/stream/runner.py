"""Continuous SES pattern matching over live streams.

:class:`ContinuousMatcher` wraps the incremental
:class:`~repro.automaton.executor.SESExecutor` with a subscription API:
callbacks fire as soon as a match is *emitted* (its window expires, per
Algorithm 1 — a match cannot be emitted earlier because a group variable
might still collect further events).

Streaming result semantics: a buffer is reported when accepted.  The
global conditions 4–5 of Definition 2 compare against candidates that may
not have been seen yet, so the streaming matcher applies them *per
emission batch* (buffers expiring at the same input event) plus
non-overlap against previously reported matches — the natural online
approximation, which coincides with the batch semantics whenever match
windows do not straddle emission points.
"""

from __future__ import annotations

import logging
from typing import Callable, Iterable, List

from ..agg.result import Match
from ..automaton.executor import SESExecutor
from ..core.events import Event
from ..core.options import resolve_option
from ..core.semantics import select_matches
from ..core.substitution import Substitution
from ..plan.cache import as_plan

__all__ = ["ContinuousMatcher"]

logger = logging.getLogger(__name__)

#: Subscribers receive the unified :class:`~repro.agg.result.Match`
#: dataclass (it delegates ``events()``/``min_ts()``/iteration to the
#: wrapped substitution, so most existing callbacks keep working).
MatchCallback = Callable[[Match], None]


class ContinuousMatcher:
    """Push-based continuous matcher for one SES pattern.

    Parameters
    ----------
    pattern:
        The SES pattern to watch for, or a compiled
        :class:`~repro.plan.plan.PatternPlan` (plans are shared — the
        recommended spelling is ``repro.compile(pattern).stream()``).
    use_filter:
        Apply the Section 4.5 event pre-filter.
    suppress_overlaps:
        Skip matches sharing events with an already reported match
        (the paper's intended-results behaviour).  Set to ``False`` to
        report every accepted buffer.
    observability:
        Optional :class:`repro.obs.Observability` bundle: the underlying
        executor reports span timings, |Ω| and latency through it, and
        the runner counts reported matches
        (``ses_stream_matches_reported_total``).  ``obs=`` is the
        deprecated spelling.
    flight:
        Optional :class:`repro.obs.flight.FlightRecorder` attached to
        the underlying executor: the tail of recent execution steps and
        |Ω| samples, dumpable on crash or via ``/debug/flight``.
    guard:
        Optional :class:`repro.resilience.guards.ResourceGuard` (or
        :class:`~repro.resilience.guards.GuardConfig`) bounding the
        executor's live state — see ``docs/resilience.md``.
    """

    def __init__(self, pattern, use_filter: bool = True,
                 suppress_overlaps: bool = True, observability=None,
                 flight=None, guard=None, obs=None):
        obs = resolve_option("ContinuousMatcher", "observability",
                             observability, "obs", obs)
        self.plan = as_plan(pattern)
        self.pattern = self.plan.pattern
        self.obs = obs
        self.flight = flight
        # Filtered events still advance the expiry clock so emission
        # latency stays bounded (see SESExecutor.expire_on_filtered).
        self._executor: SESExecutor = self.plan.executor(
            use_filter=use_filter, selection="accepted",
            expire_on_filtered=True, observability=obs, flight=flight,
            guard=guard)
        self._callbacks: List[MatchCallback] = []
        self._reported: List[Substitution] = []
        self._used_events: set = set()
        self.suppress_overlaps = suppress_overlaps
        self._reported_counter = (
            None if obs is None else obs.registry.counter(
                "ses_stream_matches_reported_total",
                help="matches reported to stream subscribers"))

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register a callback invoked once per reported match.

        Usable as a decorator::

            @matcher.on_match
            def alert(match):
                ...
        """
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(self, event: Event,
             allow_start: bool = True) -> List[Substitution]:
        """Feed one event; returns the matches reported at this point.

        ``allow_start=False`` skips the fresh start-state instance for
        this event; only pass it when no start transition can fire (see
        :meth:`SESExecutor.feed`) — the registry's shared start gate is
        the intended caller.
        """
        accepted = self._executor.feed(event, allow_start)
        return self._report(accepted)

    def tick(self, event: Event) -> List[Substitution]:
        """Advance the expiry clock without offering the event.

        Equivalent to :meth:`push` for an event the pattern's pre-filter
        rejects (the executor runs its expiry-only sweep either way);
        callers that decide admission externally — the registry's merged
        prefilter — use this to keep emission latency bounded while
        skipping the per-pattern filter work.
        """
        return self._report(self._executor.expire(event))

    @property
    def next_expiry_ts(self):
        """Latest timestamp the matcher's Ω survives unchanged (see
        :attr:`SESExecutor.next_expiry_ts`); ``None`` when nothing can
        expire."""
        return self._executor.next_expiry_ts

    def push_many(self, events: Iterable[Event]) -> List[Substitution]:
        """Feed a batch of events; returns all matches reported."""
        out: List[Substitution] = []
        for event in events:
            out.extend(self.push(event))
        return out

    def close(self) -> List[Substitution]:
        """Signal end-of-stream, flushing still-active accepting instances."""
        reported = self._report(self._executor.finish())
        self.publish_stats()
        return reported

    def publish_stats(self) -> None:
        """Flush execution counters into the obs registry (if any)."""
        self._executor.publish_stats()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot for checkpoint/restore: executor state plus the
        reported matches and used-event set (so overlap suppression
        behaves identically after a restore)."""
        return {
            "executor": self._executor.state_dict(),
            "reported": list(self._reported),
            "used_events": set(self._used_events),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._executor.load_state(state["executor"])
        self._reported = list(state["reported"])
        self._used_events = set(state["used_events"])

    def _report(self, accepted: List[Substitution]) -> List[Substitution]:
        if not accepted:
            return []
        lineage = None if self.obs is None else self.obs.lineage
        batch = select_matches(accepted, overlap="allow")
        reported: List[Substitution] = []
        for substitution in batch:
            events = set(substitution.events())
            if self.suppress_overlaps and events & self._used_events:
                continue
            self._used_events |= events
            self._reported.append(substitution)
            reported.append(substitution)
            if self._reported_counter is not None:
                self._reported_counter.inc()
            provenance = (lineage.deliver(substitution, by="stream")
                          if lineage is not None else None)
            logger.debug("match reported: %r", substitution)
            if self._callbacks:
                delivered = Match(substitution, provenance=provenance)
                for callback in self._callbacks:
                    callback(delivered)
        return reported

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matches(self) -> List[Substitution]:
        """All matches reported so far."""
        return list(self._reported)

    @property
    def matches_folded(self) -> int:
        """Matches folded into aggregates (0 for enumeration plans)."""
        return self._executor.matches_folded

    def aggregates(self):
        """Live aggregates as an :class:`~repro.agg.result.AggregateSeries`
        (``None`` for enumeration plans).  For an aggregation plan the
        matcher reports no matches — values accumulate here instead."""
        return self._executor.aggregate_result()

    def aggregate_snapshot(self):
        """Mergeable partial-aggregate snapshot (``None`` for
        enumeration plans); the sharded runtime ships these."""
        return self._executor.aggregate_snapshot()

    @property
    def active_instances(self) -> int:
        """Current automaton instance population."""
        return self._executor.active_instances

    @property
    def stats(self):
        """Execution counters of the underlying executor."""
        return self._executor.stats

    def __repr__(self) -> str:
        return (f"ContinuousMatcher({self.pattern!r}, "
                f"{len(self._reported)} matches, "
                f"{self.active_instances} active instances)")
