"""Event stream sources.

The paper's algorithm consumes one event at a time, which makes it a
natural fit for live streams (the setting of DejaVu, SASE+, Cayuga).  An
:class:`EventStream` is any chronologically ordered iterable of events;
this module provides constructors for replaying relations, merging
streams, and generating synthetic streams.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.events import Event
from ..core.relation import EventRelation

__all__ = ["from_relation", "merge", "synthetic", "take"]


def from_relation(relation: EventRelation) -> Iterator[Event]:
    """Replay a stored relation as a stream (already time-ordered)."""
    return iter(relation)


def merge(*streams: Iterable[Event]) -> Iterator[Event]:
    """Merge several time-ordered streams into one, preserving order.

    Classic k-way merge by timestamp; ties are broken by stream position,
    keeping the merge stable and deterministic.
    """
    return iter(heapq.merge(*streams, key=lambda e: e.ts))


def synthetic(kinds: Sequence[str],
              rate: float = 1.0,
              count: Optional[int] = None,
              seed: int = 0,
              attribute: str = "kind",
              make_attrs: Optional[Callable[[random.Random, str], dict]] = None
              ) -> Iterator[Event]:
    """Generate a synthetic stream of typed events.

    Parameters
    ----------
    kinds:
        Event type labels drawn uniformly at random.
    rate:
        Mean events per time unit (inter-arrival times are exponential,
        rounded to the discrete time domain).
    count:
        Number of events to generate; ``None`` streams forever.
    seed:
        Seed for determinism.
    attribute:
        Name of the attribute carrying the type label.
    make_attrs:
        Optional callback returning extra attributes per event.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    ts = 0
    produced = 0
    while count is None or produced < count:
        ts += max(1, round(rng.expovariate(rate)))
        kind = rng.choice(list(kinds))
        attrs = {attribute: kind}
        if make_attrs is not None:
            attrs.update(make_attrs(rng, kind))
        produced += 1
        yield Event(ts=ts, eid=f"x{produced}", attrs=attrs)


def take(stream: Iterable[Event], n: int) -> List[Event]:
    """Materialise the first ``n`` events of a stream."""
    out: List[Event] = []
    for event in stream:
        out.append(event)
        if len(out) >= n:
            break
    return out
