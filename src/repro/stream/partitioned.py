"""Partitioned continuous matching: one matcher per key, online.

The streaming analogue of
:class:`~repro.automaton.optimizations.PartitionedMatcher`: events are
routed by a partition attribute (e.g. the patient ``ID``) to a per-key
:class:`~repro.stream.runner.ContinuousMatcher`, created lazily on first
sight of the key.  Sound whenever the pattern equi-joins all variables on
the attribute; like batch partitioning it is immune to cross-partition
greedy hijacking, so it may report matches the unpartitioned matcher
would miss — never fewer.

Idle partitions can be garbage-collected: a partition whose matcher holds
no active instances and whose last event is more than τ old can never
contribute again; :meth:`PartitionedContinuousMatcher.collect` drops them.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from ..agg.result import Match
from ..automaton.optimizations import partition_attribute
from ..core.events import Event
from ..core.options import resolve_option
from ..core.substitution import Substitution
from ..plan.cache import as_plan
from .runner import ContinuousMatcher

__all__ = ["PartitionedContinuousMatcher"]

logger = logging.getLogger(__name__)

#: Subscribers receive ``(partition_key, match)`` where ``match`` is the
#: unified :class:`~repro.agg.result.Match` (its ``partition`` field
#: carries the key too, for callbacks that only take the match).
MatchCallback = Callable[[Hashable, Match], None]


class PartitionedContinuousMatcher:
    """Continuous matching with per-partition instance populations.

    Parameters
    ----------
    pattern:
        The SES pattern (or compiled
        :class:`~repro.plan.plan.PatternPlan`); it must equi-join all
        variables on ``partition_by``.
    partition_by:
        Partition attribute; auto-detected from the pattern's equality
        conditions when omitted.  ``attribute=`` is the deprecated
        spelling.
    use_filter / suppress_overlaps:
        Forwarded to each per-partition matcher.
    observability:
        Optional :class:`repro.obs.Observability` bundle.  When given,
        every partition gets its *own* child bundle (so metrics never
        race across partitions even if feeding is ever parallelised) and
        the bundle itself tracks the partition population; call
        :meth:`aggregate` for the merged cross-partition view.  ``obs=``
        is the deprecated spelling.
    """

    def __init__(self, pattern, partition_by: Optional[str] = None,
                 use_filter: bool = True, suppress_overlaps: bool = True,
                 observability=None, flight=None, guard=None,
                 attribute: Optional[str] = None, obs=None):
        partition_by = resolve_option(
            "PartitionedContinuousMatcher", "partition_by", partition_by,
            "attribute", attribute)
        obs = resolve_option(
            "PartitionedContinuousMatcher", "observability", observability,
            "obs", obs)
        self._plan = as_plan(pattern)
        if partition_by is None:
            partition_by = partition_attribute(self._plan.pattern)
        if partition_by is None:
            raise ValueError(
                "pattern does not equi-join all variables on a single "
                "attribute; partitioned streaming would lose matches"
            )
        self.pattern = self._plan.pattern
        self.attribute = partition_by
        self._use_filter = use_filter
        self._suppress_overlaps = suppress_overlaps
        self._matchers: Dict[Hashable, ContinuousMatcher] = {}
        self._last_ts: Dict[Hashable, object] = {}
        self._callbacks: List[MatchCallback] = []
        # Partial aggregates inherited from garbage-collected partitions
        # (aggregation plans only); merged into aggregate_snapshot().
        self._agg_carry = None
        self.obs = obs
        #: One shared flight recorder across all per-key matchers — a
        #: single tail of recent execution for the whole partition set.
        self.flight = flight
        #: One shared :class:`~repro.resilience.guards.ResourceGuard`
        #: across all per-key matchers: ceilings apply per executor (the
        #: unit the Section 4.4 bounds describe), trip statistics
        #: accumulate partition-wide.  A bare
        #: :class:`~repro.resilience.guards.GuardConfig` is wrapped here.
        self.guard = guard
        if guard is not None and not hasattr(guard, "guarded_feed"):
            from ..resilience.guards import ResourceGuard
            self.guard = ResourceGuard(
                guard, registry=None if obs is None else obs.registry)
        self._partition_gauge = (
            None if obs is None else obs.registry.gauge(
                "ses_stream_partitions", help="live partition matchers"))
        self._collected_counter = (
            None if obs is None else obs.registry.counter(
                "ses_stream_partitions_collected_total",
                help="idle partitions garbage-collected"))

    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register ``callback(partition_key, match)``."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _matcher_for(self, key: Hashable) -> ContinuousMatcher:
        """The per-key matcher, created lazily on first sight of ``key``."""
        matcher = self._matchers.get(key)
        if matcher is None:
            child_obs = None
            if self.obs is not None:
                from ..obs import Observability
                child_obs = Observability()
                # All partitions share the root lineage recorder (match
                # identity is content-derived, so one recorder serves
                # every key); assigning even when it is None keeps
                # children from auto-creating their own from the env.
                child_obs.lineage = self.obs.lineage
            matcher = ContinuousMatcher(
                self._plan, use_filter=self._use_filter,
                suppress_overlaps=self._suppress_overlaps,
                observability=child_obs, flight=self.flight,
                guard=self.guard)
            self._matchers[key] = matcher
            logger.debug("new partition %r (%d live)", key,
                         len(self._matchers))
            if self._partition_gauge is not None:
                self._partition_gauge.set(len(self._matchers))
        return matcher

    def push(self, event: Event) -> List[Substitution]:
        """Route one event to its partition; returns new matches."""
        key = event.get(self.attribute)
        matcher = self._matcher_for(key)
        self._last_ts[key] = event.ts
        reported = matcher.push(event)
        lineage = None if self.obs is None else self.obs.lineage
        for callback in self._callbacks:
            for substitution in reported:
                # The per-key matcher already stamped delivery on the
                # shared recorder; only look the record up here.
                provenance = (lineage.provenance_for(substitution)
                              if lineage is not None else None)
                callback(key, Match(substitution, partition=key,
                                    provenance=provenance))
        return reported

    def push_many(self, events: Iterable[Event]) -> List[Substitution]:
        """Feed a batch of events (stream order)."""
        out: List[Substitution] = []
        for event in events:
            out.extend(self.push(event))
        return out

    def close(self) -> List[Substitution]:
        """End-of-stream: flush every partition."""
        out: List[Substitution] = []
        lineage = None if self.obs is None else self.obs.lineage
        for key, matcher in self._matchers.items():
            flushed = matcher.close()
            out.extend(flushed)
            for callback in self._callbacks:
                for substitution in flushed:
                    provenance = (lineage.provenance_for(substitution)
                                  if lineage is not None else None)
                    callback(key, Match(substitution, partition=key,
                                        provenance=provenance))
        return out

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot every live partition for checkpoint/restore."""
        return {
            "partitions": {key: matcher.state_dict()
                           for key, matcher in self._matchers.items()},
            "last_ts": dict(self._last_ts),
            "agg_carry": self._agg_carry,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (partitions are
        created as needed; existing partitions are overwritten)."""
        for key, sub_state in state["partitions"].items():
            self._matcher_for(key).load_state(sub_state)
        self._last_ts.update(state["last_ts"])
        self._agg_carry = state.get("agg_carry")

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def collect(self, now) -> int:
        """Drop partitions that can no longer contribute matches.

        A partition is collectable when its matcher has no active
        instances and its newest event is more than τ older than ``now``
        (so even a fresh instance could never span back to it).  Returns
        the number of partitions dropped.
        """
        tau = self.pattern.tau
        dead = [key for key, matcher in self._matchers.items()
                if matcher.active_instances == 0
                and now - self._last_ts[key] > tau]
        obs = self.obs
        agg_plan = self._plan.aggregate is not None
        for key in dead:
            matcher = self._matchers[key]
            if obs is not None:
                # Fold the dying partition's metrics into the root bundle
                # so aggregate views survive garbage collection.
                matcher.publish_stats()
                if matcher.obs is not None:
                    obs.merge(matcher.obs)
            if agg_plan:
                # Aggregate partials likewise outlive their partition.
                from ..agg.engine import merge_snapshots
                self._agg_carry = merge_snapshots(
                    self._plan.aggregate, self._agg_carry,
                    matcher.aggregate_snapshot())
            del self._matchers[key]
            del self._last_ts[key]
        if dead:
            logger.debug("collected %d idle partition(s), %d live",
                         len(dead), len(self._matchers))
            if self._partition_gauge is not None:
                self._partition_gauge.set(len(self._matchers))
            if self._collected_counter is not None:
                self._collected_counter.inc(len(dead))
        return len(dead)

    def aggregate(self):
        """The merged cross-partition :class:`~repro.obs.Observability`.

        A fresh bundle combining the root bundle (partition gauges plus
        metrics inherited from collected partitions) with every live
        partition's child bundle: counters and histograms sum, gauges
        sum values and high-waters.  Returns ``None`` when the matcher
        was built without ``obs``.
        """
        if self.obs is None:
            return None
        from ..obs import Observability
        out = Observability()
        # Every per-key matcher shares the root lineage recorder, so the
        # merged view carries it by identity — merge()'s identity guard
        # then skips re-absorbing the same records once per partition.
        out.lineage = self.obs.lineage
        out.merge(self.obs)
        for matcher in self._matchers.values():
            if matcher.obs is not None:
                matcher.publish_stats()
                out.merge(matcher.obs)
        return out

    def aggregate_snapshot(self):
        """Mergeable cross-partition aggregate snapshot.

        Merges the carry inherited from collected partitions with every
        live partition's partials; ``None`` for enumeration plans.  For
        aggregation plans an (empty) snapshot is always returned, even
        with zero partitions, so shippers need no special casing.
        """
        spec = self._plan.aggregate
        if spec is None:
            return None
        from ..agg.engine import empty_snapshot, merge_snapshots
        snapshot = merge_snapshots(spec, None, self._agg_carry)
        for matcher in self._matchers.values():
            snapshot = merge_snapshots(spec, snapshot,
                                       matcher.aggregate_snapshot())
        return snapshot if snapshot is not None else empty_snapshot(spec)

    def aggregates(self):
        """Cross-partition aggregates as an
        :class:`~repro.agg.result.AggregateSeries` (``None`` for
        enumeration plans)."""
        spec = self._plan.aggregate
        if spec is None:
            return None
        from ..agg.result import AggregateSeries
        return AggregateSeries(spec, self.aggregate_snapshot())

    @property
    def matches_folded(self) -> int:
        """Matches folded into aggregates across all partitions (0 for
        enumeration plans; collected partitions included)."""
        folded = sum(m.matches_folded for m in self._matchers.values())
        if self._agg_carry is not None:
            folded += self._agg_carry.get("matches", 0)
        return folded

    @property
    def partitions(self) -> List[Hashable]:
        """Keys with a live matcher."""
        return list(self._matchers)

    @property
    def active_instances(self) -> int:
        """Total automaton instances across partitions."""
        return sum(m.active_instances for m in self._matchers.values())

    @property
    def matches(self) -> List[Substitution]:
        """All matches reported so far, in report order per partition."""
        out: List[Substitution] = []
        for matcher in self._matchers.values():
            out.extend(matcher.matches)
        out.sort(key=lambda s: s.min_ts())
        return out

    def __repr__(self) -> str:
        return (f"PartitionedContinuousMatcher({self.attribute!r}, "
                f"{len(self._matchers)} partitions, "
                f"{self.active_instances} active instances)")
