"""Streaming: sources, sliding windows, continuous matching."""

from .multi import MultiPatternMatcher
from .partitioned import PartitionedContinuousMatcher
from .runner import ContinuousMatcher
from .source import from_relation, merge, synthetic, take
from .windows import SlidingWindow, max_window_population, window_profile

__all__ = ["ContinuousMatcher", "MultiPatternMatcher",
           "PartitionedContinuousMatcher", "SlidingWindow", "from_relation",
           "max_window_population", "merge", "synthetic", "take",
           "window_profile"]
