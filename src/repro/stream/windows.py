"""Sliding window utilities over event streams.

Definition 5's window size ``W`` is the maximum population of a τ-window
sliding event-by-event.  :class:`SlidingWindow` maintains that window
incrementally over a stream, and :func:`window_profile` reports the
population at every event — useful for understanding why an execution's
instance population peaks where it does.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Iterator, List, Tuple

from ..core.events import Event

__all__ = ["SlidingWindow", "window_profile", "max_window_population"]


class SlidingWindow:
    """A time-based sliding window of width τ over an ordered stream.

    :meth:`push` adds the next event and evicts events older than
    ``event.ts - tau``; the window then contains exactly the events a SES
    automaton instance anchored at the newest event could still combine
    with (looking backwards).
    """

    def __init__(self, tau: Any):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.tau = tau
        self._events: Deque[Event] = deque()

    def push(self, event: Event) -> Tuple[Event, ...]:
        """Add ``event``, evict expired events, return the evicted ones."""
        if self._events and event.ts < self._events[-1].ts:
            raise ValueError("events must be pushed in chronological order")
        evicted: List[Event] = []
        cutoff = event.ts - self.tau
        while self._events and self._events[0].ts < cutoff:
            evicted.append(self._events.popleft())
        self._events.append(event)
        return tuple(evicted)

    @property
    def events(self) -> Tuple[Event, ...]:
        """Current window contents, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"SlidingWindow(τ={self.tau}, {len(self._events)} events)"


def window_profile(stream: Iterable[Event], tau: Any) -> Iterator[Tuple[Event, int]]:
    """Yield ``(event, window_population)`` for every stream event."""
    window = SlidingWindow(tau)
    for event in stream:
        window.push(event)
        yield event, len(window)


def max_window_population(stream: Iterable[Event], tau: Any) -> int:
    """Window size ``W`` of a stream (streaming variant of Definition 5)."""
    best = 0
    for _, population in window_profile(stream, tau):
        if population > best:
            best = population
    return best
