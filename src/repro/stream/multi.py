"""Multi-pattern matching: many SES patterns over one event pass.

Monitoring deployments rarely watch for a single pattern.  Running each
pattern's matcher separately re-reads the stream once per pattern;
:class:`MultiPatternMatcher` shares one pass: each pushed event is offered
to every registered pattern's continuous matcher, and callbacks fire per
pattern.  The per-pattern pre-filters still apply, so an event irrelevant
to all patterns costs one filter check per pattern and nothing more.

With an :class:`~repro.obs.Observability` attached, per-pattern match
counts publish as *labeled* series — one ``ses_pattern_matches_total``
metric with a ``pattern`` label per registered name — so a single
Prometheus scrape distinguishes which pattern is firing.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List

from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.substitution import Substitution
from ..plan.cache import as_plan
from ..plan.plan import PatternPlan
from .runner import ContinuousMatcher

__all__ = ["MultiPatternMatcher"]

MatchCallback = Callable[[Hashable, Substitution], None]


class MultiPatternMatcher:
    """Runs several named SES patterns over one event stream.

    Parameters
    ----------
    patterns:
        Mapping of pattern name → :class:`~repro.core.pattern.SESPattern`
        (or compiled :class:`~repro.plan.plan.PatternPlan`), or an
        iterable of patterns (auto-named ``p0``, ``p1``, …).  Patterns
        compile through the process-global plan cache, so registering
        the same pattern under several names shares one compiled plan.
    use_filter:
        Apply each pattern's Section 4.5 pre-filter.
    suppress_overlaps:
        Per-pattern overlap suppression (matches of *different* patterns
        may freely share events).
    observability:
        Optional :class:`~repro.obs.Observability`; when set, matches
        publish as labeled ``ses_pattern_matches_total{pattern=...}``
        counters (one per registered name).
    """

    def __init__(self, patterns, use_filter: bool = True,
                 suppress_overlaps: bool = True, observability=None):
        if not isinstance(patterns, dict):
            patterns = {f"p{i}": p for i, p in enumerate(patterns)}
        if not patterns:
            raise ValueError("at least one pattern is required")
        for name, pattern in patterns.items():
            if not isinstance(pattern, (SESPattern, PatternPlan)):
                raise TypeError(f"pattern {name!r} is not a SESPattern")
        self._matchers: Dict[Hashable, ContinuousMatcher] = {
            name: ContinuousMatcher(as_plan(pattern), use_filter=use_filter,
                                    suppress_overlaps=suppress_overlaps)
            for name, pattern in patterns.items()
        }
        self._callbacks: List[MatchCallback] = []
        self._obs = observability
        self._match_counters: Dict[Hashable, object] = {}
        if observability is not None:
            for name in self._matchers:
                self._match_counters[name] = observability.registry.counter(
                    f"ses_pattern_matches_total[{name}]",
                    help="Matches reported, per registered pattern.",
                    labels={"pattern": str(name)},
                    metric="ses_pattern_matches_total")

    def _count(self, name: Hashable, reported: List[Substitution]) -> None:
        counter = self._match_counters.get(name)
        if counter is not None:
            counter.inc(len(reported))

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register ``callback(pattern_name, substitution)``."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(self, event: Event) -> Dict[Hashable, List[Substitution]]:
        """Offer one event to every pattern; returns new matches by name."""
        out: Dict[Hashable, List[Substitution]] = {}
        for name, matcher in self._matchers.items():
            reported = matcher.push(event)
            if reported:
                out[name] = reported
                self._count(name, reported)
                for callback in self._callbacks:
                    for substitution in reported:
                        callback(name, substitution)
        return out

    def push_many(self, events: Iterable[Event]
                  ) -> Dict[Hashable, List[Substitution]]:
        """Feed a batch; returns all new matches grouped by pattern name."""
        out: Dict[Hashable, List[Substitution]] = {}
        for event in events:
            for name, reported in self.push(event).items():
                out.setdefault(name, []).extend(reported)
        return out

    def close(self) -> Dict[Hashable, List[Substitution]]:
        """End-of-stream: flush every pattern's matcher."""
        out: Dict[Hashable, List[Substitution]] = {}
        for name, matcher in self._matchers.items():
            flushed = matcher.close()
            if flushed:
                out[name] = flushed
                self._count(name, flushed)
                for callback in self._callbacks:
                    for substitution in flushed:
                        callback(name, substitution)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pattern_names(self) -> List[Hashable]:
        """Registered pattern names."""
        return list(self._matchers)

    def matches(self, name: Hashable) -> List[Substitution]:
        """All matches reported so far for one pattern."""
        return self._matchers[name].matches

    def all_matches(self) -> Dict[Hashable, List[Substitution]]:
        """All matches reported so far, by pattern name."""
        return {name: m.matches for name, m in self._matchers.items()}

    @property
    def active_instances(self) -> int:
        """Total automaton instances across all patterns."""
        return sum(m.active_instances for m in self._matchers.values())

    def __repr__(self) -> str:
        return (f"MultiPatternMatcher({len(self._matchers)} patterns, "
                f"{self.active_instances} active instances)")
