"""States of a SES automaton.

A state is a subset of the pattern's event variables (Definition 3): the
variables that have already been bound on the way to this state.  States are
plain ``frozenset`` values wrapped with helpers for naming and ordering so
that automata print the way the paper draws them (e.g. ``cdp+``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from ..core.variables import Variable

__all__ = ["State", "make_state", "state_label"]

#: A state is a frozen set of event variables.
State = FrozenSet[Variable]


def make_state(variables: Iterable[Variable] = ()) -> State:
    """Create a state from an iterable of variables."""
    return frozenset(variables)


def state_label(state: State) -> str:
    """Human-readable label: concatenated variable names, sorted.

    The empty (start) state renders as ``∅`` like in the paper's figures.
    """
    if not state:
        return "∅"
    return "".join(repr(v) for v in sorted(state))


def state_sort_key(state: State) -> Tuple[int, str]:
    """Deterministic ordering: by size, then by label."""
    return (len(state), state_label(state))
