"""Execution statistics for SES automaton runs.

The paper's experiments measure the maximal number of simultaneously active
automaton instances (``|Ω|`` in Algorithm 1) and wall-clock execution time.
:class:`ExecutionStats` tracks those plus a few extra counters useful for
ablations (transitions fired, branchings, filtered events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["ExecutionStats", "sparkline"]


@dataclass
class ExecutionStats:
    """Counters collected during one execution of a SES automaton."""

    #: Events read from the input relation.
    events_read: int = 0
    #: Events dropped by the Section 4.5 pre-filter.
    events_filtered: int = 0
    #: Events that reached the instance loop.
    events_processed: int = 0
    #: Automaton instances created (start instances + branchings).
    instances_created: int = 0
    #: Maximal number of simultaneously active instances (max |Ω|).
    max_simultaneous_instances: int = 0
    #: Transitions taken (bindings added to some buffer).
    transitions_fired: int = 0
    #: Extra instances spawned by nondeterministic branching.
    branchings: int = 0
    #: Instances dropped because their window expired.
    expired_instances: int = 0
    #: Buffers accepted (instance expired or flushed in the accepting state).
    accepted_buffers: int = 0
    #: Matches reported after result selection.
    matches: int = 0
    #: Optional per-event Ω population timeline (see :meth:`enable_history`).
    omega_history: Optional[List[Tuple[object, int]]] = field(
        default=None, repr=False)
    #: Timestamp the next observation will be recorded under.
    _current_ts: object = field(default=None, repr=False)
    #: History cap (``None`` = unbounded) and the downsampling stride.
    _history_cap: Optional[int] = field(default=None, repr=False)
    _history_stride: int = field(default=1, repr=False)
    _history_seen: int = field(default=0, repr=False)

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Fold another run's counters into this record.

        Counters add; the instance peak takes the maximum, matching the
        semantics of per-partition execution where partitions run one
        after another (a parallel pool over-reports the true simultaneous
        peak the same way the serial :class:`PartitionedMatcher` does, so
        the two stay comparable).  History fields are not merged.
        Returns ``self`` for chaining.
        """
        self.events_read += other.events_read
        self.events_filtered += other.events_filtered
        self.events_processed += other.events_processed
        self.instances_created += other.instances_created
        self.transitions_fired += other.transitions_fired
        self.branchings += other.branchings
        self.expired_instances += other.expired_instances
        self.accepted_buffers += other.accepted_buffers
        self.matches += other.matches
        if other.max_simultaneous_instances > self.max_simultaneous_instances:
            self.max_simultaneous_instances = other.max_simultaneous_instances
        return self

    def enable_history(self, max_samples: Optional[int] = None) -> None:
        """Start recording ``(timestamp, |Ω|)`` samples.

        One sample is kept per observation; use
        :func:`sparkline` to render the timeline for humans.  Costs one
        list append per event — leave off for measurement runs.

        ``max_samples`` bounds retained memory on long streams: once the
        timeline exceeds the cap it is uniformly downsampled (every
        second sample dropped, recording stride doubled), so the history
        always spans the whole run at progressively coarser resolution
        and never holds more than ``max_samples`` entries.
        """
        if self.omega_history is None:
            self.omega_history = []
        if max_samples is not None:
            if max_samples < 2:
                raise ValueError("max_samples must be at least 2")
            self._history_cap = max_samples

    def observe_event(self, ts) -> None:
        """Tag subsequent Ω observations with the event timestamp."""
        self._current_ts = ts

    def observe_omega(self, size: int) -> None:
        """Record the current size of Ω."""
        if size > self.max_simultaneous_instances:
            self.max_simultaneous_instances = size
        history = self.omega_history
        if history is None:
            return
        seen = self._history_seen
        self._history_seen = seen + 1
        if seen % self._history_stride:
            return
        history.append((self._current_ts, size))
        cap = self._history_cap
        if cap is not None and len(history) > cap:
            # Uniform downsample: keep every other retained sample and
            # double the stride for future observations.
            del history[1::2]
            self._history_stride *= 2


#: Unicode block characters for :func:`sparkline`, lowest to highest.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(history: List[Tuple[object, int]], width: int = 60) -> str:
    """Render an Ω population timeline as a one-line text sparkline.

    ``history`` is ``stats.omega_history``; the samples are bucketed down
    to ``width`` columns (max per bucket) and scaled to eight levels.
    Histories shorter than ``width`` render one column per sample.
    """
    if width < 1:
        raise ValueError("sparkline width must be at least 1")
    if not history:
        return ""
    sizes = [s for _, s in history]
    if len(sizes) > width:
        # Integer bucket boundaries: each bucket takes len//width samples
        # and the last bucket absorbs the remainder, so trailing samples
        # are never dropped (float bucketing could round the tail away).
        base = len(sizes) // width
        sizes = [max(sizes[i * base:(i + 1) * base]) if i < width - 1
                 else max(sizes[i * base:])
                 for i in range(width)]
    peak = max(sizes) or 1
    levels = len(_BLOCKS) - 1
    return "".join(_BLOCKS[round(s / peak * levels)] for s in sizes)
