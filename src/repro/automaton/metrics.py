"""Execution statistics for SES automaton runs.

The paper's experiments measure the maximal number of simultaneously active
automaton instances (``|Ω|`` in Algorithm 1) and wall-clock execution time.
:class:`ExecutionStats` tracks those plus a few extra counters useful for
ablations (transitions fired, branchings, filtered events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["ExecutionStats", "sparkline"]


@dataclass
class ExecutionStats:
    """Counters collected during one execution of a SES automaton."""

    #: Events read from the input relation.
    events_read: int = 0
    #: Events dropped by the Section 4.5 pre-filter.
    events_filtered: int = 0
    #: Events that reached the instance loop.
    events_processed: int = 0
    #: Automaton instances created (start instances + branchings).
    instances_created: int = 0
    #: Maximal number of simultaneously active instances (max |Ω|).
    max_simultaneous_instances: int = 0
    #: Transitions taken (bindings added to some buffer).
    transitions_fired: int = 0
    #: Extra instances spawned by nondeterministic branching.
    branchings: int = 0
    #: Instances dropped because their window expired.
    expired_instances: int = 0
    #: Buffers accepted (instance expired or flushed in the accepting state).
    accepted_buffers: int = 0
    #: Matches reported after result selection.
    matches: int = 0
    #: Optional per-event Ω population timeline (see :meth:`enable_history`).
    omega_history: Optional[List[Tuple[object, int]]] = field(
        default=None, repr=False)
    #: Timestamp the next observation will be recorded under.
    _current_ts: object = field(default=None, repr=False)

    def enable_history(self) -> None:
        """Start recording ``(timestamp, |Ω|)`` samples.

        One sample is kept per observation; use
        :func:`sparkline` to render the timeline for humans.  Costs one
        list append per event — leave off for measurement runs.
        """
        if self.omega_history is None:
            self.omega_history = []

    def observe_event(self, ts) -> None:
        """Tag subsequent Ω observations with the event timestamp."""
        self._current_ts = ts

    def observe_omega(self, size: int) -> None:
        """Record the current size of Ω."""
        if size > self.max_simultaneous_instances:
            self.max_simultaneous_instances = size
        if self.omega_history is not None:
            self.omega_history.append((self._current_ts, size))


#: Unicode block characters for :func:`sparkline`, lowest to highest.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(history: List[Tuple[object, int]], width: int = 60) -> str:
    """Render an Ω population timeline as a one-line text sparkline.

    ``history`` is ``stats.omega_history``; the samples are bucketed down
    to ``width`` columns (max per bucket) and scaled to eight levels.
    """
    if not history:
        return ""
    sizes = [s for _, s in history]
    if len(sizes) > width:
        bucket = len(sizes) / width
        sizes = [max(sizes[int(i * bucket):max(int(i * bucket) + 1,
                                               int((i + 1) * bucket))])
                 for i in range(width)]
    peak = max(sizes) or 1
    levels = len(_BLOCKS) - 1
    return "".join(_BLOCKS[round(s / peak * levels)] for s in sizes)
