"""Construction of SES automata from SES patterns (Section 4.2).

The construction is the paper's two-step process:

1. **Translation** (Section 4.2.1): each event set pattern ``Vi`` becomes an
   automaton whose states are *all subsets* of ``Vi``.  From every state
   ``q`` there is a transition binding each unbound variable ``v ∈ Vi \\ q``
   (target ``q ∪ {v}``) and a looping transition for each group variable
   ``v+ ∈ q``.  A transition's condition set ``Θδ`` collects the conditions
   of Θ that constrain ``v`` against a constant, against itself, or against
   variables guaranteed to be bound already (preceding event set patterns
   and the source state).

2. **Concatenation** (Section 4.2.2): the per-set automata are chained in
   pattern order.  States of the later automaton are renamed by uniting
   them with all preceding variables, which automatically merges the
   accepting state of the earlier automaton with the start state of the
   later one.  Transitions leaving the merged state gain time constraints
   ``v'.T < v.T`` for every preceding variable ``v'``, enforcing that all
   events of a later set occur strictly after all events of earlier sets.
"""

from __future__ import annotations

import itertools
import logging
from typing import FrozenSet, List, Tuple

from ..core.conditions import Attr, Condition
from ..core.pattern import SESPattern
from ..core.variables import Variable
from .automaton import SESAutomaton
from .states import State, make_state
from .transitions import Transition

__all__ = ["build_set_automaton", "concatenate", "build_automaton"]


def _powerset(variables: FrozenSet[Variable]) -> List[State]:
    """All subsets of ``variables`` as states."""
    items = sorted(variables)
    states: List[State] = []
    for k in range(len(items) + 1):
        for combo in itertools.combinations(items, k):
            states.append(make_state(combo))
    return states


def _transition_conditions(pattern: SESPattern, set_index: int,
                           source: State, variable: Variable
                           ) -> Tuple[Condition, ...]:
    """The condition set ``Θδ`` for binding ``variable`` from ``source``.

    Per Section 4.2.1: all conditions from Θ of the form ``v.A φ C``, plus
    two-variable conditions ``v.A φ v'.A'`` whose partner ``v'`` lies in a
    preceding event set pattern, in the source state, or is ``v`` itself.
    """
    allowed = set(pattern.preceding_variables(set_index)) | set(source) | {variable}
    selected: List[Condition] = []
    for condition in pattern.conditions:
        if not condition.mentions(variable):
            continue
        other = condition.other_variable(variable)
        if other is None or other in allowed:
            selected.append(condition)
    return tuple(selected)


def build_set_automaton(pattern: SESPattern, set_index: int) -> SESAutomaton:
    """Translate the event set pattern ``pattern.sets[set_index]``.

    The returned automaton considers the set *in isolation* but routes
    conditions with full pattern context, so conditions whose partner
    variable belongs to a preceding set are already attached (they become
    checkable only after concatenation).
    """
    variables = pattern.sets[set_index]
    states = _powerset(variables)
    transitions: List[Transition] = []
    for state in states:
        for variable in sorted(variables - state):
            transitions.append(Transition(
                state, variable,
                _transition_conditions(pattern, set_index, state, variable),
            ))
        for variable in sorted(state):
            if variable.is_group:
                transitions.append(Transition(
                    state, variable,
                    _transition_conditions(pattern, set_index, state, variable),
                ))
    return SESAutomaton(
        states=states,
        transitions=transitions,
        start=make_state(),
        accepting=make_state(variables),
        tau=pattern.tau,
    )


def concatenate(first: SESAutomaton, second: SESAutomaton) -> SESAutomaton:
    """Concatenate two SES automata (Section 4.2.2).

    The accepting state of ``first`` becomes the start state of the renamed
    ``second``; transitions leaving it into the second automaton receive
    the inter-set time constraints ``v'.T < v.T`` for every variable ``v'``
    of ``first``'s accepting state.
    """
    prefix = first.accepting
    renamed_states = {frozenset(q | prefix) for q in second.states}
    states = set(first.states) | renamed_states

    transitions: List[Transition] = list(first.transitions)
    for t in second.transitions:
        source = frozenset(t.source | prefix)
        conditions: Tuple[Condition, ...] = t.conditions
        if t.source == second.start:
            time_constraints = tuple(
                Condition(Attr(v_prev, "T"), "<", Attr(t.variable, "T"))
                for v_prev in sorted(prefix)
            )
            conditions = conditions + time_constraints
        transitions.append(Transition(source, t.variable, conditions))

    return SESAutomaton(
        states=states,
        transitions=transitions,
        start=first.start,
        accepting=frozenset(second.accepting | prefix),
        tau=first.tau,
    )


def build_automaton(pattern: SESPattern) -> SESAutomaton:
    """Build the full SES automaton for ``pattern``.

    Translates each event set pattern and concatenates left to right:
    ``((N1 N2) N3) ...`` in the order of the pattern's sets.
    """
    automaton = build_set_automaton(pattern, 0)
    for i in range(1, len(pattern)):
        automaton = concatenate(automaton, build_set_automaton(pattern, i))
    logging.getLogger(__name__).debug(
        "built automaton: %d states, %d transitions",
        len(automaton.states), len(automaton.transitions))
    return automaton
