"""SES automata: construction (Section 4.2) and execution (Section 4.3)."""

from .automaton import AutomatonError, SESAutomaton
from .buffer import MatchBuffer
from .builder import build_automaton, build_set_automaton, concatenate
from .executor import MatchResult, SESExecutor, execute
from .filtering import EventFilter
from .instance import AutomatonInstance
from .metrics import ExecutionStats, sparkline
from .minimize import TrimReport, trim
from .optimizations import IndexedExecutor, PartitionedMatcher, partition_attribute
from .pruning import DeadlineTable, PruningExecutor
from .states import State, make_state, state_label
from .trace import TraceStep, Tracer, format_trace
from .transitions import Transition

__all__ = [
    "AutomatonError", "AutomatonInstance", "EventFilter", "ExecutionStats",
    "DeadlineTable", "IndexedExecutor", "MatchBuffer", "MatchResult",
    "PartitionedMatcher", "PruningExecutor",
    "SESAutomaton", "SESExecutor", "State", "TrimReport",
    "partition_attribute", "sparkline", "trim",
    "Transition", "build_automaton", "build_set_automaton", "concatenate",
    "TraceStep", "Tracer", "execute", "format_trace", "make_state",
    "state_label",
]
