"""Event pre-filtering (Section 4.5).

Events that satisfy none of the constant conditions ``v.A φ C`` of a
pattern can never be bound by any transition, yet in Algorithm 1 every
input event causes an iteration over all active automaton instances.  The
paper therefore filters such events out right after they are read, which
its Experiment 3 shows to cut execution time by about an order of
magnitude.  Filtering does not change the set of accepted buffers, only the
number of instance-loop iterations.

Two filter modes are provided:

* ``"paper"`` — the filter exactly as described: an event passes iff it
  satisfies *at least one* constant condition from Θ.  This is only sound
  when every variable carries at least one constant condition (otherwise
  events intended for an unconstrained variable would be dropped); when a
  variable has none, the filter disables itself and passes everything.
* ``"conjunctive"`` (default) — an event passes iff there is *some variable*
  all of whose constant conditions it satisfies.  This is always sound
  (a variable without constant conditions accepts every event) and never
  weaker than the paper mode.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.conditions import Condition
from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.variables import Variable

__all__ = ["EventFilter"]


class EventFilter:
    """Pre-filter for input events, built from a pattern's Θ.

    Use :meth:`admits` on each input event; events that fail can be skipped
    without consulting any automaton instance.
    """

    def __init__(self, pattern: SESPattern, mode: str = "conjunctive"):
        if mode not in ("paper", "conjunctive"):
            raise ValueError(f"unknown filter mode {mode!r}")
        self.mode = mode
        self._admitted_counter = None
        self._rejected_counter = None
        self._by_variable: Dict[Variable, Tuple[Condition, ...]] = {
            v: pattern.constant_conditions(v) for v in pattern.variables
        }
        self._all_constant: Tuple[Condition, ...] = pattern.constant_conditions()
        unconstrained = [v for v, cs in self._by_variable.items() if not cs]
        if mode == "paper" and unconstrained:
            # The disjunctive filter would wrongly drop events destined for
            # the unconstrained variables; fall back to passing everything.
            self._effective = False
        else:
            self._effective = bool(self._all_constant) or bool(self._by_variable)
        if not self._by_variable:
            self._effective = False

    @property
    def is_effective(self) -> bool:
        """False iff the filter passes every event (no pruning possible)."""
        return self._effective

    def bind_metrics(self, registry) -> "EventFilter":
        """Report admitted/rejected counts to an obs registry.

        Called by instrumented executors.  Binding swaps :meth:`admits`
        for a counting wrapper on this instance, so an *unbound* filter
        pays no overhead at all.
        """
        self._admitted_counter = registry.counter(
            "ses_filter_admitted_total",
            help="events admitted by the Section 4.5 pre-filter")
        self._rejected_counter = registry.counter(
            "ses_filter_rejected_total",
            help="events rejected by the Section 4.5 pre-filter")
        self.admits = self._admits_counted
        return self

    def _admits_counted(self, event: Event) -> bool:
        """:meth:`admits` plus admitted/rejected counters (bound mode)."""
        ok = EventFilter.admits(self, event)
        counter = self._admitted_counter if ok else self._rejected_counter
        counter.inc()
        return ok

    def admits(self, event: Event) -> bool:
        """True iff ``event`` may be relevant to some variable."""
        if not self._effective:
            return True
        if self.mode == "paper":
            return any(self._safe(c, event) for c in self._all_constant)
        for conditions in self._by_variable.values():
            if all(self._safe(c, event) for c in conditions):
                return True
        return False

    @staticmethod
    def _safe(condition: Condition, event: Event) -> bool:
        """Evaluate a constant condition, treating missing attributes as False."""
        if condition.left.attribute not in event:
            return False
        return condition.evaluate_events(event)

    def __repr__(self) -> str:
        state = "effective" if self._effective else "pass-through"
        return f"EventFilter(mode={self.mode!r}, {state})"
