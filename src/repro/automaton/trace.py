"""Execution tracing: Figure 6-style step-by-step introspection.

The paper explains its algorithm with a trace of automaton instances
consuming the running example (Figure 6).  :class:`Tracer` records the
same information from a live :class:`~repro.automaton.executor.SESExecutor`
— instance creation, transitions, branches, skips, expiry, acceptance —
as structured :class:`TraceStep` records, and :func:`format_trace`
renders them for humans::

    tracer = Tracer()
    executor = SESExecutor(automaton, tracer=tracer)
    executor.run(relation)
    print(format_trace(tracer.steps))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.events import Event
from .instance import AutomatonInstance
from .states import state_label
from .transitions import Transition

__all__ = ["TraceStep", "Tracer", "format_trace"]

#: Step kinds, in the vocabulary of Algorithm 1 / Figure 6.
KINDS = ("start", "transition", "skip", "drop", "expire", "accept", "flush")


@dataclass(frozen=True)
class TraceStep:
    """One recorded execution step."""

    #: What happened (one of :data:`KINDS`).
    kind: str
    #: The input event driving the step (``None`` for end-of-input flushes).
    event: Optional[Event]
    #: The instance before the step.
    instance: AutomatonInstance
    #: The transition taken (``kind == "transition"`` only).
    transition: Optional[Transition] = None
    #: The successor instance (``kind == "transition"`` only).
    successor: Optional[AutomatonInstance] = None

    def describe(self) -> str:
        """Single-line human-readable rendering."""
        event = self.event.eid or f"T={self.event.ts}" if self.event else "EOF"
        state = state_label(self.instance.state)
        if self.kind == "start":
            return f"read {event}: new instance at {state}"
        if self.kind == "transition":
            target = state_label(self.successor.state)
            return (f"read {event}: ({state}) --{self.transition.variable!r}--> "
                    f"({target}) β={self.successor.buffer!r}")
        if self.kind == "skip":
            return f"read {event}: ignored by instance at {state}"
        if self.kind == "drop":
            return f"read {event}: start instance dropped (no transition)"
        if self.kind == "expire":
            return (f"read {event}: instance at {state} expired "
                    f"β={self.instance.buffer!r}")
        if self.kind in ("accept", "flush"):
            return (f"{'flush' if self.kind == 'flush' else f'read {event}'}: "
                    f"ACCEPT β={self.instance.buffer!r}")
        return f"{self.kind} {event} {state}"


class Tracer:
    """Collects :class:`TraceStep` records from an executor.

    Pass an instance as ``SESExecutor(..., tracer=...)``.  ``max_steps``
    bounds memory on long runs (oldest steps are *not* evicted — recording
    simply stops — so a trace is always a faithful prefix).
    """

    def __init__(self, max_steps: int = 100_000):
        self.max_steps = max_steps
        self.steps: List[TraceStep] = []

    def record(self, kind: str, event: Optional[Event],
               instance: AutomatonInstance,
               transition: Optional[Transition] = None,
               successor: Optional[AutomatonInstance] = None) -> None:
        """Append one step (no-op once ``max_steps`` is reached)."""
        if len(self.steps) >= self.max_steps:
            return
        self.steps.append(TraceStep(kind, event, instance, transition,
                                    successor))

    def clear(self) -> None:
        """Drop all recorded steps."""
        self.steps = []

    def of_kind(self, kind: str) -> List[TraceStep]:
        """All steps of one kind."""
        return [s for s in self.steps if s.kind == kind]

    def __len__(self) -> int:
        return len(self.steps)


def format_trace(steps: List[TraceStep], skip_kinds=("start", "drop")) -> str:
    """Render steps one per line, Figure 6 style.

    ``skip_kinds`` suppresses the noisiest step kinds by default (a start
    instance is created for every event).
    """
    lines = [step.describe() for step in steps if step.kind not in skip_kinds]
    return "\n".join(lines)
