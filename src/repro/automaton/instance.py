"""Automaton instances (Definition 4).

An automaton instance ``Ñ = (qc, β)`` describes a SES automaton during
execution: the state it currently occupies and the match buffer β that
collects variable bindings.  Instances are immutable; consuming an event
produces new instances.
"""

from __future__ import annotations

from ..core.events import Event
from ..core.variables import Variable
from .buffer import EMPTY_BUFFER, MatchBuffer
from .states import State, state_label

__all__ = ["AutomatonInstance"]


class AutomatonInstance:
    """An automaton instance ``Ñ = (qc, β)``.

    The buffer's ``min_ts`` (timestamp of the earliest buffered event)
    makes the expiry check of Algorithm 1 (line 7) O(1) per instance.
    """

    __slots__ = ("state", "buffer")

    def __init__(self, state: State, buffer: MatchBuffer = EMPTY_BUFFER):
        self.state = state
        self.buffer = buffer

    def advance(self, target: State, variable: Variable,
                event: Event) -> "AutomatonInstance":
        """Return the successor instance after binding ``variable/event``."""
        return AutomatonInstance(target, self.buffer.extend(variable, event))

    def expired(self, event: Event, tau) -> bool:
        """Expiry check of Algorithm 1: does ``event`` overrun the window?

        An instance with an empty buffer never expires.  Events arrive in
        chronological order, so the maximal span between ``event`` and any
        buffered event is ``event.ts - min_ts``.
        """
        min_ts = self.buffer.min_ts
        if min_ts is None:
            return False
        return event.ts - min_ts > tau

    def __repr__(self) -> str:
        return f"Ñ(qc={state_label(self.state)}, β={self.buffer!r})"
