"""Execution of SES automata (Section 4.3, Algorithms 1 and 2).

:class:`SESExecutor` maintains the set Ω of active automaton instances.
For every input event it

1. adds a fresh instance in the start state (Algorithm 1, line 4);
2. expires instances whose window would overrun, emitting the buffer of an
   expired instance that sits in the accepting state (lines 7–10);
3. lets every surviving instance consume the event (Algorithm 2): each
   enabled transition yields a successor instance; several enabled
   transitions branch nondeterministically; an instance with no enabled
   transition survives unchanged unless it still sits in the start state.

For finite relations the executor additionally *flushes* accepting
instances at end of input — Algorithm 1 as printed only reports a match
once the window expires, which would silently drop matches completing in
the last τ time units of the data.

Result selection
----------------
Accepted buffers are candidates; Definition 2's skip-till-next-match and
maximality conditions (4 and 5) are then applied across the accepted set,
duplicates are removed, and (for the default ``selection="paper"``)
overlapping later matches are suppressed, yielding the paper's intended
results.  ``selection="all-starts"`` keeps one match per start position;
``selection="accepted"`` returns the raw accepted buffers.
"""

from __future__ import annotations

import copy
import logging
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..core.events import Event
from ..core.semantics import select_matches
from ..core.substitution import Substitution
from .automaton import SESAutomaton
from .buffer import EMPTY_BUFFER
from .filtering import EventFilter
from .instance import AutomatonInstance
from .metrics import ExecutionStats

__all__ = ["SESExecutor", "MatchResult", "execute"]

logger = logging.getLogger(__name__)

#: ``(stats attribute, counter name)`` pairs published to an
#: :class:`~repro.obs.Observability` registry after a batch run.
_STAT_COUNTERS = (
    ("events_read", "ses_events_read_total"),
    ("events_filtered", "ses_events_filtered_total"),
    ("events_processed", "ses_events_processed_total"),
    ("instances_created", "ses_instances_created_total"),
    ("transitions_fired", "ses_transitions_fired_total"),
    ("branchings", "ses_branchings_total"),
    ("expired_instances", "ses_instances_expired_total"),
    ("accepted_buffers", "ses_accepted_buffers_total"),
    ("matches", "ses_matches_total"),
)

#: Valid result-selection policies: ``"paper"`` applies Definition 2's
#: conditions 4–5 plus greedy non-overlap (the paper's intended results),
#: ``"all-starts"`` keeps one match per start position (overlaps allowed),
#: ``"accepted"`` returns the raw accepted buffers.
SELECTIONS = ("paper", "all-starts", "accepted")

#: Event-consumption modes.  ``"greedy"`` is Algorithm 2 as published
#: (skip-till-next-match: an instance whose transitions fire is replaced
#: by its successors).  ``"exhaustive"`` additionally keeps the original
#: instance alive (skip-till-any-match), so every candidate substitution
#: of conditions 1–3 is explored; combined with result selection this
#: yields exactly the declarative Definition 2 semantics, at an
#: exponential worst-case cost — an oracle-grade mode, not the paper's
#: algorithm.  ``"contiguous"`` is the strict-contiguity strategy of
#: SASE-style engines: an instance that cannot consume an event ends —
#: emitting its buffer if it already sits in the accepting state —
#: so matched events must be adjacent in the (filtered) input.
CONSUME_MODES = ("greedy", "exhaustive", "contiguous")


@dataclass
class MatchResult:
    """Outcome of executing a SES automaton over an event relation."""

    #: Matching substitutions after result selection.
    matches: List[Substitution]
    #: Raw accepted buffers (before conditions 4–5 and deduplication).
    accepted: List[Substitution]
    #: Execution counters.
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: Finalised :class:`~repro.agg.result.AggregateSeries` when the run
    #: aggregated instead of enumerating; ``None`` otherwise.
    aggregates: Optional[object] = None

    def __iter__(self):
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def to_rows(self) -> List[dict]:
        """Matches as plain dicts (for tabulation/serialisation).

        Each row maps variable names to the list of bound event ids (or
        timestamps when an event has no id) and carries ``start``/``end``
        timestamps.
        """
        rows: List[dict] = []
        for substitution in self.matches:
            row: dict = {
                "start": substitution.min_ts(),
                "end": substitution.max_ts(),
            }
            for variable in sorted(substitution.variables):
                row[repr(variable)] = [
                    e.eid if e.eid is not None else e.ts
                    for e in substitution.events_of(variable)
                ]
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return (f"MatchResult({len(self.matches)} matches, "
                f"{len(self.accepted)} accepted, "
                f"maxΩ={self.stats.max_simultaneous_instances})")


class _TeeTracer:
    """Fans one stream of trace records out to two recorders.

    Lets a full :class:`~repro.automaton.trace.Tracer` and a
    :class:`~repro.obs.flight.FlightRecorder` share the executor's
    single tracer hook, so attaching both costs no extra branches.
    """

    __slots__ = ("first", "second")

    def __init__(self, first, second):
        self.first = first
        self.second = second

    def record(self, kind, event, instance, transition=None, successor=None):
        self.first.record(kind, event, instance, transition, successor)
        self.second.record(kind, event, instance, transition, successor)


class SESExecutor:
    """Executes a SES automaton over a stream of time-ordered events.

    Parameters
    ----------
    automaton:
        The SES automaton to run.
    event_filter:
        Optional :class:`~repro.automaton.filtering.EventFilter` applied to
        every input event before the instance loop (Section 4.5).
    selection:
        ``"paper"`` (default) post-filters accepted buffers with
        Definition 2's conditions 4–5 and suppresses overlapping later
        matches; ``"all-starts"`` keeps overlaps; ``"accepted"`` returns
        raw buffers.

    The executor is incremental: :meth:`feed` consumes one event and
    returns buffers accepted *by expiry* at that event; :meth:`finish`
    flushes end-of-input acceptances.  :meth:`run` wraps both for batch
    use.  A single executor may be reused after :meth:`reset`.
    """

    def __init__(self, automaton: SESAutomaton,
                 event_filter: Optional[EventFilter] = None,
                 selection: str = "paper",
                 expire_on_filtered: bool = False,
                 consume_mode: str = "greedy",
                 tracer=None,
                 record_history: bool = False,
                 history_max_samples: Optional[int] = None,
                 obs=None,
                 flight=None,
                 guard=None,
                 aggregate=None):
        if selection not in SELECTIONS:
            raise ValueError(
                f"unknown selection {selection!r}; expected one of {SELECTIONS}"
            )
        if consume_mode not in CONSUME_MODES:
            raise ValueError(
                f"unknown consume_mode {consume_mode!r}; expected one of "
                f"{CONSUME_MODES}"
            )
        self.automaton = automaton
        self.event_filter = event_filter
        self.selection = selection
        self.consume_mode = consume_mode
        #: Optional :class:`~repro.automaton.trace.Tracer` recording every
        #: execution step (Figure 6 style).  Adds overhead; leave ``None``
        #: for measurement runs.
        self.tracer = tracer
        #: Also run the expiry sweep for filtered events.  Algorithm 1 with
        #: the Section 4.5 filter skips the whole instance loop, which is
        #: fine for batch runs (results are flushed at end of input) but
        #: delays match emission on live streams; streaming callers enable
        #: this so expiry — and hence emission — keeps up with time even
        #: when only irrelevant events arrive.  The accepted set is
        #: unchanged either way (expired instances cannot consume).
        self.expire_on_filtered = expire_on_filtered
        #: Record a per-event (timestamp, |Ω|) timeline in
        #: ``stats.omega_history`` (render with
        #: :func:`repro.automaton.metrics.sparkline`).
        self.record_history = record_history
        #: Cap on retained history samples (uniform downsampling beyond).
        self.history_max_samples = history_max_samples
        #: Optional :class:`repro.obs.Observability` bundle.  When set,
        #: :meth:`feed` times the filter and consume stages with spans,
        #: updates the |Ω| gauge, and observes per-event latency and
        #: instance lifetimes; :meth:`run` additionally times result
        #: selection and publishes the :class:`ExecutionStats` counters.
        #: ``None`` (the default) keeps the hot path instrumentation-free
        #: — a single ``is None`` check per event.
        self.obs = obs
        #: Optional :class:`repro.obs.flight.FlightRecorder`.  Attached,
        #: it rides the existing tracer hooks (teed when a full tracer
        #: is also present) plus one |Ω| sample per processed event, so
        #: the tail of execution survives a crash; detached (the
        #: default) the hot path is unchanged.
        self.flight = flight
        #: Optional :class:`repro.resilience.guards.ResourceGuard` (or a
        #: bare :class:`~repro.resilience.guards.GuardConfig`, wrapped
        #: here) enforcing ceilings on |Ω|, buffer bytes and per-event
        #: time after every :meth:`feed`.  ``None`` (the default) keeps
        #: the hot path to a single ``is None`` check, like ``obs``.
        self.guard = guard
        if guard is not None and not hasattr(guard, "guarded_feed"):
            from ..resilience.guards import ResourceGuard
            self.guard = ResourceGuard(
                guard, registry=None if obs is None else obs.registry)
        #: Optional :class:`~repro.agg.spec.AggregateSpec`.  Set, the
        #: executor folds aggregates incrementally over coalesced
        #: instance groups instead of enumerating matches: ``feed``
        #: returns no substitutions, ``run`` produces an empty match
        #: list whose :attr:`MatchResult.aggregates` carries the
        #: finalised values.  Aggregation folds the raw accepted
        #: buffers, so the selection is forced to ``"accepted"`` —
        #: the global selection passes would require materialisation.
        self.aggregate = aggregate
        self._agg = None
        if aggregate is not None:
            from ..agg.engine import AggregationEngine
            self.selection = "accepted"
            self._agg = AggregationEngine(
                automaton, aggregate, consume_mode=consume_mode)
            # Shadow the instance loop with the group-fold twins; every
            # shared entry point (feed/expire/run) then aggregates.
            self._step = self._agg_step
            self._expire_only = self._agg_expire_only
        if self.guard is None:
            # Branch-free disabled path: shadow the class method with
            # the unguarded implementation, skipping even the dispatch.
            self.feed = self._feed
        if flight is not None:
            self.tracer = (flight if tracer is None
                           else _TeeTracer(tracer, flight))
        #: Optional :class:`~repro.obs.lineage.LineageRecorder`, taken
        #: from the observability bundle.  Attached, it rides the tracer
        #: hooks (teed with any existing tracer) and the feed entry
        #: point is re-bound to a thin ingest-stamping wrapper; absent,
        #: the hot path keeps the exact un-instrumented binding — the
        #: same zero-dispatch idiom as the disabled resource guard.
        self.lineage = (None if obs is None
                        else getattr(obs, "lineage", None))
        if self.lineage is not None:
            self.tracer = (self.lineage if self.tracer is None
                           else _TeeTracer(self.tracer, self.lineage))
            self._inner_feed = self.feed
            self.feed = self._traced_feed
        if obs is not None and event_filter is not None:
            event_filter.bind_metrics(obs.registry)
        self.reset()

    def reset(self) -> None:
        """Clear all execution state for a fresh run."""
        self._omega: List[AutomatonInstance] = []
        self._accepted: List[Substitution] = []
        self._accepted_during_consume: List[Substitution] = []
        self._last_ts = None
        self._published_stats = {}
        self.stats = ExecutionStats()
        if getattr(self, "_agg", None) is not None:
            self._agg.reset()
        if getattr(self, "record_history", False):
            self.stats.enable_history(
                max_samples=getattr(self, "history_max_samples", None))

    @property
    def active_instances(self) -> int:
        """Current size of Ω (coalesced groups in aggregate mode)."""
        if self._agg is not None:
            return self._agg.group_count
        return len(self._omega)

    @property
    def accepted_buffers(self) -> List[Substitution]:
        """All buffers accepted so far (raw, before result selection)."""
        return list(self._accepted)

    # ------------------------------------------------------------------
    # Incremental execution
    # ------------------------------------------------------------------
    def feed(self, event: Event,
             allow_start: bool = True) -> List[Substitution]:
        """Consume one event; return buffers accepted by window expiry.

        With a resource guard attached, the guard's ceilings are checked
        (and its breach policy applied) after the event is processed;
        without one this is a single extra ``is None`` test.

        ``allow_start=False`` skips creating the fresh start-state
        instance for this event.  A caller may only pass it when it has
        proven no start transition can fire on the event (the registry's
        shared start gate does exactly that) — the fresh instance would
        then be dropped inside the consume loop anyway, so the match set
        is unchanged.
        """
        if self.guard is None:
            return self._feed(event, allow_start)
        return self.guard.guarded_feed(self, event, allow_start)

    def _traced_feed(self, event: Event,
                     allow_start: bool = True) -> List[Substitution]:
        """Ingest-stamping wrapper bound over :meth:`feed` when a
        lineage recorder is attached (guarded or not — it captures
        whichever binding the guard setup left in place)."""
        self.lineage.note_ingest(event)
        return self._inner_feed(event, allow_start)

    def _feed(self, event: Event,
              allow_start: bool = True) -> List[Substitution]:
        stats = self.stats
        stats.events_read += 1
        if self._last_ts is not None and event.ts < self._last_ts:
            raise ValueError(
                f"events must arrive in chronological order; got T={event.ts} "
                f"after T={self._last_ts}"
            )
        self._last_ts = event.ts

        obs = self.obs
        if obs is None:
            if (self.event_filter is not None
                    and not self.event_filter.admits(event)):
                stats.events_filtered += 1
                if self.expire_on_filtered:
                    return self._expire_only(event)
                return []
            stats.events_processed += 1
            return self._step(event, allow_start)

        start = time.perf_counter()
        with obs.span("filter"):
            admitted = (self.event_filter is None
                        or self.event_filter.admits(event))
        if not admitted:
            stats.events_filtered += 1
            if self.expire_on_filtered:
                accepted = self._expire_only(event)
            else:
                accepted = []
        else:
            stats.events_processed += 1
            with obs.span("consume"):
                accepted = self._step(event, allow_start)
        obs.omega(self.active_instances)
        obs.event_seconds(time.perf_counter() - start)
        return accepted

    @property
    def next_expiry_ts(self):
        """Latest timestamp the current Ω survives unchanged.

        An event with ``ts`` at or below this value expires nothing (an
        expiry-only sweep would be a no-op); the first event beyond it
        expires the oldest instance.  ``None`` when no instance holds
        buffered events — nothing can expire.  Callers that batch events
        (the registry's shared admission pass) use this to skip the
        per-event expiry sweeps that cannot fire.
        """
        if self._agg is not None:
            return self._agg.next_expiry_ts
        oldest = None
        for instance in self._omega:
            min_ts = instance.buffer.min_ts
            if min_ts is not None and (oldest is None or min_ts < oldest):
                oldest = min_ts
        return None if oldest is None else oldest + self.automaton.tau

    def expire(self, event: Event) -> List[Substitution]:
        """Advance the expiry clock without offering the event to Ω.

        The bookkeeping twin of the filtered branch of :meth:`feed`: the
        event counts as read-and-filtered, the chronology check runs, and
        instances whose window the event's timestamp overruns expire
        (emitting accepting buffers).  Used by callers that decide
        admission outside the executor — the registry's shared admission
        pass calls this for events its merged prefilter rejected.
        """
        stats = self.stats
        stats.events_read += 1
        if self._last_ts is not None and event.ts < self._last_ts:
            raise ValueError(
                f"events must arrive in chronological order; got T={event.ts} "
                f"after T={self._last_ts}"
            )
        self._last_ts = event.ts
        stats.events_filtered += 1
        return self._expire_only(event)

    def _step(self, event: Event,
              allow_start: bool = True) -> List[Substitution]:
        """Algorithm 1's per-event instance loop (post-filter)."""
        stats = self.stats
        obs = self.obs
        automaton = self.automaton
        tau = automaton.tau
        accepting = automaton.accepting
        start = automaton.start

        omega = self._omega
        if allow_start:
            fresh = AutomatonInstance(start, EMPTY_BUFFER)
            omega.append(fresh)
            stats.instances_created += 1
        stats.observe_event(event.ts)
        stats.observe_omega(len(omega))
        if obs is not None:
            obs.omega(len(omega))
        tracer = self.tracer
        if tracer is not None and allow_start:
            tracer.record("start", event, fresh)

        accepted_now: List[Substitution] = []
        self._accepted_during_consume = accepted_now
        next_omega: List[AutomatonInstance] = []
        for instance in omega:
            if instance.expired(event, tau):
                stats.expired_instances += 1
                if obs is not None:
                    obs.lifetime(event.ts - instance.buffer.min_ts)
                if tracer is not None:
                    tracer.record("expire", event, instance)
                if instance.state == accepting:
                    accepted_now.append(instance.buffer.to_substitution())
                    stats.accepted_buffers += 1
                    if tracer is not None:
                        tracer.record("accept", event, instance)
                continue
            self._consume(instance, event, next_omega)
        self._omega = next_omega
        stats.observe_omega(len(next_omega))
        flight = self.flight
        if flight is not None:
            flight.sample_omega(event.ts, len(next_omega))
        self._accepted.extend(accepted_now)
        return accepted_now

    def _expire_only(self, event: Event) -> List[Substitution]:
        """Expiry sweep without consumption (filtered events, streaming)."""
        stats = self.stats
        tau = self.automaton.tau
        accepting = self.automaton.accepting
        accepted_now: List[Substitution] = []
        survivors: List[AutomatonInstance] = []
        obs = self.obs
        for instance in self._omega:
            if instance.expired(event, tau):
                stats.expired_instances += 1
                if obs is not None:
                    obs.lifetime(event.ts - instance.buffer.min_ts)
                if instance.state == accepting:
                    accepted_now.append(instance.buffer.to_substitution())
                    stats.accepted_buffers += 1
                    # This sweep bypasses the tracer (flight contents
                    # must not change with streaming expiry), but
                    # lineage needs every acceptance.
                    if self.lineage is not None:
                        self.lineage.record("accept", event, instance)
                elif self.lineage is not None:
                    self.lineage.record("expire", event, instance)
            else:
                survivors.append(instance)
        self._omega = survivors
        self._accepted.extend(accepted_now)
        return accepted_now

    def _consume(self, instance: AutomatonInstance, event: Event,
                 out: List[AutomatonInstance]) -> None:
        """Algorithm 2 (ConsumeEvent), appending survivors to ``out``.

        In ``"exhaustive"`` mode the original instance also survives when
        transitions fire, so the run may *skip* a consumable event — the
        skip-till-any-match behaviour needed for Definition-2 exactness.
        """
        stats = self.stats
        tracer = self.tracer
        fired = 0
        for transition in self.automaton.outgoing(instance.state):
            if transition.admits(event, instance.buffer):
                successor = instance.advance(
                    transition.target, transition.variable, event)
                out.append(successor)
                fired += 1
                if tracer is not None:
                    tracer.record("transition", event, instance,
                                  transition, successor)
        if fired:
            stats.transitions_fired += fired
            if fired > 1:
                stats.branchings += fired - 1
                stats.instances_created += fired - 1
            if (self.consume_mode == "exhaustive"
                    and instance.state != self.automaton.start):
                out.append(instance)
                stats.instances_created += 1
        elif instance.state != self.automaton.start:
            if self.consume_mode == "contiguous":
                # Strict contiguity: a non-consumable event ends the run;
                # a run already in the accepting state is complete.
                if instance.state == self.automaton.accepting:
                    self._accepted_during_consume.append(
                        instance.buffer.to_substitution())
                    stats.accepted_buffers += 1
                    if tracer is not None:
                        tracer.record("accept", event, instance)
                elif tracer is not None:
                    tracer.record("drop", event, instance)
                return
            out.append(instance)
            if tracer is not None:
                tracer.record("skip", event, instance)
        elif tracer is not None:
            tracer.record("drop", event, instance)

    # ------------------------------------------------------------------
    # Aggregate mode (no match materialisation)
    # ------------------------------------------------------------------
    def _agg_step(self, event: Event,
                  allow_start: bool = True) -> List[Substitution]:
        """Group-fold twin of :meth:`_step`; never emits substitutions."""
        self._agg.step(event, allow_start, self.stats)
        if self.lineage is not None:
            self.lineage.note_fold(event, self._agg.matches_folded)
        flight = self.flight
        if flight is not None:
            flight.sample_omega(event.ts, self._agg.group_count)
        return []

    def _agg_expire_only(self, event: Event) -> List[Substitution]:
        """Group-fold twin of :meth:`_expire_only`."""
        self._agg.expire_only(event, self.stats)
        return []

    @property
    def matches_folded(self) -> int:
        """Matches folded into aggregates so far (0 without a spec)."""
        return 0 if self._agg is None else self._agg.matches_folded

    def aggregate_snapshot(self) -> Optional[dict]:
        """Mergeable partial-aggregate snapshot (``None`` without a spec)."""
        return None if self._agg is None else self._agg.snapshot()

    def aggregate_result(self):
        """Current aggregates as an :class:`~repro.agg.result.AggregateSeries`
        (``None`` without a spec)."""
        if self._agg is None:
            return None
        from ..agg.result import AggregateSeries
        return AggregateSeries(self.aggregate, self._agg.snapshot(),
                               stats=self.stats)

    def finish(self) -> List[Substitution]:
        """Flush: accept buffers of instances resting in the accepting state."""
        if self._agg is not None:
            self._agg.finish(self.stats)
            self._omega = []
            return []
        accepted_now: List[Substitution] = []
        for instance in self._omega:
            if instance.state == self.automaton.accepting:
                accepted_now.append(instance.buffer.to_substitution())
                self.stats.accepted_buffers += 1
                if self.tracer is not None:
                    self.tracer.record("flush", None, instance)
        self._omega = []
        self._accepted.extend(accepted_now)
        return accepted_now

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the execution state for checkpoint/restore.

        Captures Ω (as ``(state, buffer)`` pairs — both immutable),
        the accepted buffers, the last-processed timestamp and a deep
        copy of the counters.  Restoring the snapshot into a fresh
        executor over the same automaton and then feeding the same
        suffix of events reproduces the run exactly (execution is
        deterministic in the event sequence).
        """
        snapshot = {
            "omega": [(instance.state, instance.buffer)
                      for instance in self._omega],
            "accepted": list(self._accepted),
            "last_ts": self._last_ts,
            "stats": copy.deepcopy(self.stats),
        }
        if self._agg is not None:
            snapshot["agg"] = self._agg.state_dict()
        return snapshot

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse of it)."""
        self._omega = [AutomatonInstance(q, beta)
                       for q, beta in state["omega"]]
        self._accepted = list(state["accepted"])
        self._accepted_during_consume = []
        self._last_ts = state["last_ts"]
        self.stats = copy.deepcopy(state["stats"])
        self._published_stats = {}
        if self._agg is not None and "agg" in state:
            self._agg.load_state(state["agg"])

    # ------------------------------------------------------------------
    # Batch execution and result selection
    # ------------------------------------------------------------------
    def run(self, events: Iterable[Event]) -> MatchResult:
        """Execute over a complete relation and select results.

        With a flight recorder attached, an exception escaping the run
        carries the recorder's dump as ``exc.flight_dump`` — the tail of
        execution leading up to the failure.
        """
        self.reset()
        current: Optional[Event] = None
        try:
            for event in events:
                current = event
                self.feed(event)
            current = None
            self.finish()
        except Exception as exc:
            if self.flight is not None and not hasattr(exc, "flight_dump"):
                self.flight.note_crash(
                    current, f"{type(exc).__name__}: {exc}")
                exc.flight_dump = self.flight.dump()
                logger.error(
                    "executor failed after %d event(s); flight recorder "
                    "holds %d step(s)", self.stats.events_read,
                    len(self.flight))
            raise
        if self._agg is not None:
            # No enumeration: matches stays empty (ses_matches_total does
            # not grow) and the fold totals ride on the result.
            self.publish_stats()
            logger.debug(
                "aggregate run complete: %d events, %d matches folded, "
                "max groups=%d", self.stats.events_read,
                self._agg.matches_folded, self._agg.max_groups)
            return MatchResult(matches=[], accepted=[], stats=self.stats,
                               aggregates=self.aggregate_result())
        matches = self.select(self._accepted)
        self.stats.matches = len(matches)
        self.publish_stats()
        logger.debug(
            "run complete: %d events, %d accepted, %d matches, max|Ω|=%d",
            self.stats.events_read, self.stats.accepted_buffers,
            self.stats.matches, self.stats.max_simultaneous_instances)
        return MatchResult(matches=matches, accepted=list(self._accepted),
                           stats=self.stats)

    def select(self, accepted: Sequence[Substitution]) -> List[Substitution]:
        """Apply the configured result selection to accepted buffers."""
        obs = self.obs
        if obs is None:
            return self._select(accepted)
        with obs.span("select"):
            return self._select(accepted)

    def _select(self, accepted: Sequence[Substitution]) -> List[Substitution]:
        if self.selection == "accepted":
            return list(accepted)
        overlap = "suppress" if self.selection == "paper" else "allow"
        return select_matches(accepted, overlap=overlap)

    def publish_stats(self) -> None:
        """Mirror the :class:`ExecutionStats` counters into the registry.

        Delta-aware, so it is safe to call repeatedly (streaming callers
        publish at every snapshot point); a no-op without ``obs``.
        """
        if self.obs is None:
            return
        registry = self.obs.registry
        published = self._published_stats
        for attr, name in _STAT_COUNTERS:
            value = getattr(self.stats, attr)
            delta = value - published.get(attr, 0)
            if delta:
                registry.counter(name).inc(delta)
                published[attr] = value
        registry.gauge(
            "ses_omega_peak",
            help="max simultaneously active instances this run",
        ).set(self.stats.max_simultaneous_instances)
        if self._agg is not None:
            folded = self._agg.matches_folded
            delta = folded - published.get("_agg_folded", 0)
            if delta:
                registry.counter(
                    "ses_agg_matches_folded_total",
                    help="matches folded into aggregates (not materialised)",
                ).inc(delta)
                published["_agg_folded"] = folded
            registry.gauge(
                "ses_agg_groups",
                help="active coalesced instance groups",
            ).set(self._agg.group_count)
            registry.gauge(
                "ses_agg_groups_peak",
                help="max coalesced instance groups this run",
            ).set(self._agg.max_groups)


def execute(automaton: SESAutomaton, events: Iterable[Event],
            event_filter: Optional[EventFilter] = None,
            selection: str = "paper") -> MatchResult:
    """One-shot convenience wrapper around :class:`SESExecutor`."""
    executor = SESExecutor(automaton, event_filter=event_filter,
                           selection=selection)
    return executor.run(events)
