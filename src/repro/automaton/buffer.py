"""Match buffers: the β of an automaton instance.

Functionally this is the substitution an instance has collected so far.
:class:`~repro.core.substitution.Substitution` is immutable and optimised
for set-algebraic queries; during execution we instead need a structure
that is cheap to *extend* (every fired transition copies the buffer).
:class:`MatchBuffer` stores a per-variable tuple of events and extends by
copying a handful of dict entries, converting to a full substitution only
when a buffer is accepted.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.events import Event
from ..core.substitution import Substitution
from ..core.variables import Variable

__all__ = ["MatchBuffer", "EMPTY_BUFFER"]


class MatchBuffer:
    """An append-only collection of variable bindings.

    Events are appended in consumption order, which is chronological, so
    per-variable tuples stay time-sorted without explicit sorting.
    """

    __slots__ = ("_by_var", "min_ts", "max_ts", "size")

    def __init__(self, by_var: Optional[Dict[Variable, Tuple[Event, ...]]] = None,
                 min_ts=None, max_ts=None, size: int = 0):
        self._by_var = by_var if by_var is not None else {}
        self.min_ts = min_ts
        self.max_ts = max_ts
        self.size = size

    def extend(self, variable: Variable, event: Event) -> "MatchBuffer":
        """Return a new buffer with ``variable/event`` appended."""
        by_var = dict(self._by_var)
        by_var[variable] = by_var.get(variable, ()) + (event,)
        min_ts = event.ts if self.min_ts is None else self.min_ts
        return MatchBuffer(by_var, min_ts, event.ts, self.size + 1)

    def events_of(self, variable: Variable) -> Tuple[Event, ...]:
        """Events bound to ``variable``, chronologically (may be empty)."""
        return self._by_var.get(variable, ())

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def to_substitution(self) -> Substitution:
        """Materialise as an immutable :class:`Substitution`."""
        pairs = [(v, e) for v, events in self._by_var.items() for e in events]
        return Substitution(pairs)

    def __repr__(self) -> str:
        parts = []
        for variable in sorted(self._by_var):
            for event in self._by_var[variable]:
                parts.append(f"{variable!r}/{event.eid or event.ts}")
        return "{" + ", ".join(parts) + "}"


#: A shared empty buffer for fresh start instances.
EMPTY_BUFFER = MatchBuffer()
