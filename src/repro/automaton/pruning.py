"""Deadline pruning: terminate partial matches that cannot complete.

Inspired by the constraint-aware CEP of the paper's related work (C-CEP
[14], "detects at runtime optimal points for terminating the evaluation
of partial query matches that will never be satisfied").  The variant
implemented here is *temporal* unsatisfiability:

An instance anchored at ``min_ts`` must finish by ``min_ts + τ``.  From
its current state it still has to cross some number ``b`` of *set
boundaries* (event set patterns with no binding yet), and entering a set
requires a timestamp strictly greater than every event of the preceding
set.  With tick size 1 (integer domains), the earliest possible
completion time is

    max(last_bound_ts + 1, current_ts) + (b - 1)

— the first boundary needs to clear the newest bound event (but may
coincide with the current timestamp if that is already later), and each
further boundary costs another tick.  If that exceeds ``min_ts + τ``,
no future input can ever complete the instance and it can be dropped
*now* instead of lingering until expiry.  Pruning only applies to
non-accepting instances, so the accepted-buffer set is unchanged; only
the instance population (and hence time and memory) shrinks.

:class:`DeadlineTable` precomputes the remaining-boundary count per
automaton state; :class:`PruningExecutor` plugs it into the standard
executor loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.events import Event
from ..core.pattern import SESPattern
from .automaton import SESAutomaton
from .executor import SESExecutor
from .filtering import EventFilter
from .instance import AutomatonInstance
from .states import State

__all__ = ["DeadlineTable", "PruningExecutor"]


class DeadlineTable:
    """Per-state minimum time still needed to reach the accepting state.

    Parameters
    ----------
    pattern:
        The SES pattern the automaton was built from (provides the event
        set structure).
    automaton:
        The automaton whose states are to be annotated.
    tick:
        Minimal distance between two distinct timestamps (1 for integer
        domains).  Use 0 for dense/unknown domains — pruning then only
        triggers on instances that must cross a boundary *after* the
        window already closed.
    """

    def __init__(self, pattern: SESPattern, automaton: SESAutomaton,
                 tick: int = 1):
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self.tick = tick
        self._needed: Dict[State, int] = {}
        for state in automaton.states:
            self._needed[state] = self._boundaries_remaining(pattern, state) * tick

    @staticmethod
    def _boundaries_remaining(pattern: SESPattern, state: State) -> int:
        """Set boundaries an instance at ``state`` still has to cross.

        A set pattern with at least one binding in ``state`` has been
        *entered*.  Every set after the last entered one costs a strictly
        later timestamp.  (Unbound variables within the current set can
        still bind events at the current timestamp — ties are allowed
        inside a set — so they cost nothing.)
        """
        last_entered = -1
        for i, variables in enumerate(pattern.sets):
            if variables & state:
                last_entered = i
        return len(pattern.sets) - 1 - last_entered if last_entered >= 0 \
            else len(pattern.sets) - 1

    def min_remaining_time(self, state: State) -> int:
        """Minimal extra time an instance at ``state`` still needs."""
        return self._needed[state]

    def doomed(self, instance: AutomatonInstance, current_ts, tau) -> bool:
        """True iff ``instance`` provably cannot complete within its window."""
        buffer = instance.buffer
        min_ts = buffer.min_ts
        if min_ts is None:
            return False
        needed = self._needed[instance.state]
        if needed == 0:
            return False
        # Earliest entry into the next set clears the newest bound event;
        # every further boundary costs one more tick.
        first_entry = buffer.max_ts + self.tick
        if first_entry < current_ts:
            first_entry = current_ts
        earliest_completion = first_entry + needed - self.tick
        return earliest_completion > min_ts + tau


class PruningExecutor(SESExecutor):
    """The standard executor plus C-CEP-style deadline pruning.

    Accepts the same arguments as
    :class:`~repro.automaton.executor.SESExecutor` plus the ``pattern``
    (needed for set-boundary analysis) and the domain ``tick``.
    Accepted buffers are identical to the plain executor's; the instance
    population is never larger.
    """

    def __init__(self, pattern: SESPattern, automaton: SESAutomaton,
                 event_filter: Optional[EventFilter] = None,
                 selection: str = "paper", tick: int = 1, **kwargs):
        super().__init__(automaton, event_filter=event_filter,
                         selection=selection, **kwargs)
        self.deadlines = DeadlineTable(pattern, automaton, tick=tick)
        self.pruned_instances = 0

    def reset(self) -> None:
        super().reset()
        self.pruned_instances = 0

    def _consume(self, instance: AutomatonInstance, event: Event,
                 out: List[AutomatonInstance]) -> None:
        before = len(out)
        super()._consume(instance, event, out)
        # Drop doomed survivors (never the accepting state: accepting
        # instances have zero remaining boundaries by construction, so
        # doomed() cannot fire for them before plain expiry does).
        accepting = self.automaton.accepting
        kept = []
        for successor in out[before:]:
            if (successor.state != accepting
                    and self.deadlines.doomed(successor, event.ts,
                                              self.automaton.tau)):
                self.pruned_instances += 1
                continue
            kept.append(successor)
        if len(kept) != len(out) - before:
            out[before:] = kept
