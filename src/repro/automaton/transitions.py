"""Transitions of a SES automaton.

A transition ``δ = (q, v, Θδ)`` (Definition 3) leads from source state ``q``
to target state ``q ∪ {v}`` when the transition condition set ``Θδ`` is
satisfied by the new binding together with the bindings already collected.
For a group variable ``v+ ∈ q`` the target equals the source, i.e. the
transition loops.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.conditions import Condition
from ..core.events import Event
from ..core.substitution import Substitution
from ..core.variables import Variable
from .states import State, state_label

__all__ = ["Transition"]


class Transition:
    """A transition ``δ = (q, v, Θδ)``.

    Parameters
    ----------
    source:
        Source state ``q``.
    variable:
        The event variable bound when the transition fires.
    conditions:
        The transition condition set ``Θδ``.
    """

    __slots__ = ("source", "variable", "conditions", "_target", "_checks")

    def __init__(self, source: State, variable: Variable,
                 conditions: Iterable[Condition] = ()):
        self.source: State = frozenset(source)
        self.variable = variable
        self.conditions: Tuple[Condition, ...] = tuple(conditions)
        self._target: State = self.source | {variable}
        # Precompile the condition checks so admits() does no per-event
        # normalisation: each entry is (partner_variable_or_None, anchored
        # condition with `variable` on the left).
        checks = []
        for condition in self.conditions:
            other = condition.other_variable(variable)
            anchored = condition.normalised_for(variable)
            if other is None or other == variable:
                checks.append((None, anchored))
            else:
                checks.append((other, anchored))
        self._checks: Tuple = tuple(checks)

    @property
    def target(self) -> State:
        """Target state ``q ∪ {v}`` (equals ``q`` for a looping transition)."""
        return self._target

    @property
    def checks(self) -> Tuple:
        """The precompiled checks: ``(partner_or_None, anchored)`` pairs.

        ``partner_or_None`` is ``None`` for constant and self-conditions
        (evaluate on the new event alone); otherwise the partner variable
        whose bound events the anchored condition is universally
        quantified over.  The aggregation engine compiles these into
        value-space checks over projected attribute sets.
        """
        return self._checks

    @property
    def is_loop(self) -> bool:
        """True iff the transition loops (group variable already in ``q``)."""
        return self._target == self.source

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def admits(self, event: Event, buffer: Substitution) -> bool:
        """Evaluate ``Θδ`` for binding ``event`` to :attr:`variable`.

        The check is incremental: conditions are instantiated with the new
        binding against *every* existing binding of the other mentioned
        variable (decomposition semantics).  Bindings already in the buffer
        were validated when they were added, so re-checking pairs that do
        not involve the new event is unnecessary.
        """
        for other, anchored in self._checks:
            if other is None:
                # Constant condition, or a self-condition v.A φ v.A': both
                # evaluate on the new event alone (a decomposed substitution
                # binds one event per variable).
                if not anchored.evaluate_events(event, event):
                    return False
                continue
            partner_events = buffer.events_of(other)
            # An unbound partner cannot be checked on this transition; the
            # builder only routes conditions whose partner is guaranteed
            # bound, so this only happens for custom automata — treat as
            # satisfied (checked later).
            for partner in partner_events:
                if not anchored.evaluate_events(event, partner):
                    return False
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transition):
            return NotImplemented
        return (self.source == other.source
                and self.variable == other.variable
                and frozenset(self.conditions) == frozenset(other.conditions))

    def __hash__(self) -> int:
        return hash((self.source, self.variable, frozenset(self.conditions)))

    def __repr__(self) -> str:
        conds = ", ".join(repr(c) for c in self.conditions)
        return (f"({state_label(self.source)} --{self.variable!r}--> "
                f"{state_label(self.target)} [{conds}])")
