"""Runtime optimizations beyond the paper's algorithm.

The paper's future work names "space and runtime optimizations …
including indexing techniques for automaton instances [11]".  This module
implements two such techniques and benchmarks them as ablations (see
benchmarks/bench_ablation_optimizations.py).  :class:`IndexedExecutor`
accepts exactly the buffers Algorithm 1 accepts;
:class:`PartitionedMatcher` accepts a superset (see below).

* :class:`IndexedExecutor` groups the instance population Ω by current
  state.  Constant transition conditions depend only on the input event,
  so they are evaluated **once per (state, transition) per event** instead
  of once per instance; a state whose outgoing transitions all fail their
  constant conditions lets all its instances skip the event wholesale.
* :class:`PartitionedMatcher` splits the relation on an attribute that the
  pattern equi-joins across *all* variables (e.g. the patient ``ID`` of
  Query Q1) and runs one executor per partition.  Cross-partition
  combinations are provably condition-violating, so pruning them is safe
  and the per-partition instance populations are much smaller.  Note the
  recall subtlety: under skip-till-next-match an unpartitioned run can be
  *hijacked* — a greedy instance binds a cross-partition event on a
  transition whose join conditions are not yet checkable and dies in a
  dead end.  Partitioned execution never sees such events, so it accepts
  a **superset** of the buffers Algorithm 1 accepts (closer to the
  declarative Definition 2); it never loses a match.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..core.semantics import select_matches
from ..core.substitution import Substitution
from ..core.variables import Variable
from .automaton import SESAutomaton
from .buffer import EMPTY_BUFFER
from .executor import SELECTIONS, MatchResult
from .filtering import EventFilter
from .instance import AutomatonInstance
from .metrics import ExecutionStats
from .states import State

__all__ = ["IndexedExecutor", "PartitionedMatcher", "partition_attribute"]


class IndexedExecutor:
    """Algorithm 1 with the instance population indexed by state.

    Exposes the same ``feed`` / ``finish`` / ``run`` interface as
    :class:`~repro.automaton.executor.SESExecutor`.  Only the greedy
    (skip-till-next-match) consumption mode is implemented — for the
    exhaustive or contiguous modes, tracing, or Ω-history recording, use
    the plain executor.
    """

    def __init__(self, automaton: SESAutomaton,
                 event_filter: Optional[EventFilter] = None,
                 selection: str = "paper"):
        if selection not in SELECTIONS:
            raise ValueError(f"unknown selection {selection!r}")
        self.automaton = automaton
        self.event_filter = event_filter
        self.selection = selection
        # Per transition: event-only checks (anchored conditions evaluated
        # once per state group) and binding-dependent checks as
        # (partner variable, anchored condition) pairs.
        self._split_checks: Dict[int, Tuple[tuple, tuple]] = {}
        for state in automaton.states:
            for transition in automaton.outgoing(state):
                event_only = []
                dependent = []
                for condition in transition.conditions:
                    anchored = condition.normalised_for(transition.variable)
                    other = condition.other_variable(transition.variable)
                    if other is None or other == transition.variable:
                        event_only.append(anchored)
                    else:
                        dependent.append((other, anchored))
                self._split_checks[id(transition)] = (tuple(event_only),
                                                      tuple(dependent))
        self.reset()

    def reset(self) -> None:
        """Clear all execution state."""
        self._by_state: Dict[State, List[AutomatonInstance]] = {}
        self._accepted: List[Substitution] = []
        self._population = 0
        self._last_ts = None
        self.stats = ExecutionStats()

    @property
    def active_instances(self) -> int:
        """Current size of Ω."""
        return self._population

    @property
    def accepted_buffers(self) -> List[Substitution]:
        """Buffers accepted so far."""
        return list(self._accepted)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def feed(self, event: Event) -> List[Substitution]:
        """Consume one event (same contract as SESExecutor.feed)."""
        stats = self.stats
        stats.events_read += 1
        if self._last_ts is not None and event.ts < self._last_ts:
            raise ValueError("events must arrive in chronological order")
        self._last_ts = event.ts
        if self.event_filter is not None and not self.event_filter.admits(event):
            stats.events_filtered += 1
            return []
        stats.events_processed += 1

        automaton = self.automaton
        tau = automaton.tau
        accepting = automaton.accepting

        by_state = self._by_state
        by_state.setdefault(automaton.start, []).append(
            AutomatonInstance(automaton.start, EMPTY_BUFFER))
        stats.instances_created += 1
        self._population += 1
        stats.observe_omega(self._population)

        accepted_now: List[Substitution] = []
        next_by_state: Dict[State, List[AutomatonInstance]] = {}
        population = 0

        for state, instances in by_state.items():
            # Evaluate event-only conditions once for the whole group.
            enabled = []
            for transition in automaton.outgoing(state):
                event_only, dependent = self._split_checks[id(transition)]
                if all(a.evaluate_events(event, event) for a in event_only):
                    enabled.append((transition, dependent))
            survivors = next_by_state
            for instance in instances:
                if instance.expired(event, tau):
                    stats.expired_instances += 1
                    if state == accepting:
                        accepted_now.append(instance.buffer.to_substitution())
                        stats.accepted_buffers += 1
                    continue
                buffer = instance.buffer
                fired = 0
                for transition, dependent in enabled:
                    admitted = True
                    for other, anchored in dependent:
                        for partner in buffer.events_of(other):
                            if not anchored.evaluate_events(event, partner):
                                admitted = False
                                break
                        if not admitted:
                            break
                    if admitted:
                        successor = instance.advance(
                            transition.target, transition.variable, event)
                        survivors.setdefault(transition.target, []).append(successor)
                        population += 1
                        fired += 1
                if fired:
                    stats.transitions_fired += fired
                    if fired > 1:
                        stats.branchings += fired - 1
                        stats.instances_created += fired - 1
                elif state != automaton.start:
                    survivors.setdefault(state, []).append(instance)
                    population += 1
        self._by_state = next_by_state
        self._population = population
        stats.observe_omega(population)
        self._accepted.extend(accepted_now)
        return accepted_now

    def finish(self) -> List[Substitution]:
        """Flush accepting instances at end of input."""
        accepted_now: List[Substitution] = []
        for instance in self._by_state.get(self.automaton.accepting, ()):
            accepted_now.append(instance.buffer.to_substitution())
            self.stats.accepted_buffers += 1
        self._by_state = {}
        self._population = 0
        self._accepted.extend(accepted_now)
        return accepted_now

    def run(self, events: Iterable[Event]) -> MatchResult:
        """Batch execution with result selection."""
        self.reset()
        for event in events:
            self.feed(event)
        self.finish()
        if self.selection == "accepted":
            matches = list(self._accepted)
        else:
            overlap = "suppress" if self.selection == "paper" else "allow"
            matches = select_matches(self._accepted, overlap=overlap)
        self.stats.matches = len(matches)
        return MatchResult(matches=matches, accepted=list(self._accepted),
                           stats=self.stats)


def partition_attribute(pattern: SESPattern) -> Optional[str]:
    """An attribute on which the pattern equi-joins *all* its variables.

    Returns the attribute name if Θ's equality conditions over a single
    attribute connect every variable of the pattern (so events from
    different partitions can never co-occur in a match), else ``None``.
    """
    candidates: Dict[str, List[Tuple[Variable, Variable]]] = {}
    for condition in pattern.conditions:
        if condition.is_constant or condition.op != "=":
            continue
        left, right = condition.left, condition.right
        if left.attribute != right.attribute:  # type: ignore[union-attr]
            continue
        candidates.setdefault(left.attribute, []).append(
            (left.variable, right.variable))  # type: ignore[union-attr]
    variables = pattern.variables
    for attribute, edges in sorted(candidates.items()):
        # Union-find over the equality graph.
        parent = {v: v for v in variables}

        def find(v):
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for a, b in edges:
            parent[find(a)] = find(b)
        roots = {find(v) for v in variables}
        if len(roots) == 1:
            return attribute
    return None


class PartitionedMatcher:
    """Evaluate a pattern per partition of an equi-joined attribute.

    Raises :class:`ValueError` if the pattern's conditions do not connect
    all variables through equalities on a single attribute (partitioning
    would be unsound); pass ``partition_by`` explicitly to override the
    automatic detection (at your own risk; ``attribute=`` is the
    deprecated spelling).  Accepts a compiled
    :class:`~repro.plan.plan.PatternPlan` in place of the pattern.
    """

    def __init__(self, pattern, partition_by: Optional[str] = None,
                 use_filter: bool = True, selection: str = "paper",
                 consume: Optional[str] = None,
                 attribute: Optional[str] = None):
        from ..core.options import resolve_option
        from ..plan.cache import as_plan
        partition_by = resolve_option(
            "PartitionedMatcher", "partition_by", partition_by,
            "attribute", attribute)
        plan = as_plan(pattern)
        if partition_by is None:
            partition_by = partition_attribute(plan.pattern)
        if partition_by is None:
            raise ValueError(
                "pattern does not equi-join all variables on a single "
                "attribute; partitioned execution would lose matches"
            )
        self.plan = plan
        self.attribute = partition_by
        self.pattern = plan.pattern
        self.selection = selection
        self._use_filter = use_filter
        self._consume = consume

    def run(self, relation: Union[EventRelation, Iterable[Event]]) -> MatchResult:
        """Run the pattern over every partition; merge and select results."""
        if not isinstance(relation, EventRelation):
            relation = EventRelation(relation)
        accepted: List[Substitution] = []
        stats = ExecutionStats()
        for _, part in sorted(relation.partition_by(self.attribute).items(),
                              key=lambda kv: str(kv[0])):
            executor = self.plan.executor(use_filter=self._use_filter,
                                          selection="accepted",
                                          consume=self._consume)
            result = executor.run(part)
            accepted.extend(result.accepted)
            stats.merge(result.stats)
        if self.selection == "accepted":
            matches = list(accepted)
        else:
            overlap = "suppress" if self.selection == "paper" else "allow"
            matches = select_matches(accepted, overlap=overlap)
        stats.matches = len(matches)
        return MatchResult(matches=matches, accepted=accepted, stats=stats)
