"""The SES automaton (Definition 3).

A SES automaton is a five-tuple ``N = (Q, Δ, qs, qf, τ)``: a finite set of
states (subsets of the pattern's variables), a finite set of transitions,
a start state, an accepting state, and the maximal duration τ.  Executing
an automaton maintains *automaton instances*, each enriched with a match
buffer β collecting variable bindings (see :mod:`repro.automaton.instance`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..core.variables import Variable
from .states import State, state_label, state_sort_key
from .transitions import Transition

__all__ = ["SESAutomaton", "AutomatonError"]


class AutomatonError(ValueError):
    """Raised when an automaton is structurally invalid."""


class SESAutomaton:
    """A SES automaton ``N = (Q, Δ, qs, qf, τ)``.

    Parameters
    ----------
    states:
        The state set ``Q``; every transition endpoint must be included.
    transitions:
        The transition set ``Δ``.
    start:
        Start state ``qs``.
    accepting:
        Accepting state ``qf``.
    tau:
        Maximal duration spanned by the events in a match buffer.
    """

    def __init__(self, states: Iterable[State], transitions: Iterable[Transition],
                 start: State, accepting: State, tau):
        self.states: FrozenSet[State] = frozenset(frozenset(s) for s in states)
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self.start: State = frozenset(start)
        self.accepting: State = frozenset(accepting)
        self.tau = tau
        self._validate()
        self._outgoing: Dict[State, Tuple[Transition, ...]] = {}
        by_source: Dict[State, List[Transition]] = {}
        for t in self.transitions:
            by_source.setdefault(t.source, []).append(t)
        for state in self.states:
            self._outgoing[state] = tuple(by_source.get(state, ()))

    def _validate(self) -> None:
        if self.start not in self.states:
            raise AutomatonError("start state not in state set")
        if self.accepting not in self.states:
            raise AutomatonError("accepting state not in state set")
        for t in self.transitions:
            if t.source not in self.states:
                raise AutomatonError(f"transition source missing from Q: {t!r}")
            if t.target not in self.states:
                raise AutomatonError(f"transition target missing from Q: {t!r}")

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def outgoing(self, state: State) -> Tuple[Transition, ...]:
        """Transitions whose source is ``state``."""
        try:
            return self._outgoing[state]
        except KeyError:
            raise AutomatonError(f"unknown state {state_label(state)}") from None

    def loops_at(self, state: State) -> Tuple[Transition, ...]:
        """The looping transitions at ``state``."""
        return tuple(t for t in self.outgoing(state) if t.is_loop)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """All variables bound by some transition."""
        return frozenset(t.variable for t in self.transitions)

    def is_accepting(self, state: State) -> bool:
        """True iff ``state`` is the accepting state."""
        return state == self.accepting

    # ------------------------------------------------------------------
    # Introspection / rendering
    # ------------------------------------------------------------------
    def sorted_states(self) -> List[State]:
        """States in a deterministic order (size, then label)."""
        return sorted(self.states, key=state_sort_key)

    def describe(self) -> str:
        """Multi-line description mirroring the paper's figures."""
        lines = [
            f"SES automaton: {len(self.states)} states, "
            f"{len(self.transitions)} transitions, τ={self.tau}",
            f"  start: {state_label(self.start)}",
            f"  accepting: {state_label(self.accepting)}",
        ]
        for state in self.sorted_states():
            for t in sorted(self.outgoing(state),
                            key=lambda t: (state_sort_key(t.target), t.variable.name)):
                conds = ", ".join(repr(c) for c in t.conditions)
                lines.append(
                    f"  {state_label(state)} --{t.variable!r}--> "
                    f"{state_label(t.target)}  {{{conds}}}"
                )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Render as Graphviz DOT (for documentation and debugging)."""
        lines = ["digraph SES {", "  rankdir=LR;"]
        for state in self.sorted_states():
            label = state_label(state)
            shape = "doublecircle" if state == self.accepting else "circle"
            lines.append(f'  "{label}" [shape={shape}];')
        lines.append('  __start [shape=point];')
        lines.append(f'  __start -> "{state_label(self.start)}";')
        for t in self.transitions:
            conds = ", ".join(repr(c) for c in t.conditions)
            lines.append(
                f'  "{state_label(t.source)}" -> "{state_label(t.target)}" '
                f'[label="{t.variable!r} {conds}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SESAutomaton(|Q|={len(self.states)}, |Δ|={len(self.transitions)}, "
                f"qs={state_label(self.start)}, qf={state_label(self.accepting)}, "
                f"τ={self.tau})")
