"""Automaton trimming: remove dead transitions and unreachable states.

The powerset construction (Section 4.2) generates every subset of each
event set pattern.  When a user writes conditions that can never fire
together — e.g. two conflicting constant conditions end up on one
transition — parts of the lattice become dead weight: the transition can
never fire, and states only reachable through it are never entered, yet
every unpruned state still costs lookup work at execution time and the
automaton is harder to read in ``describe()`` output.

:func:`trim` removes

* transitions whose own constant conditions are mutually unsatisfiable
  (decided with the conservative conflict test of
  :mod:`repro.complexity.bounds` — only provable conflicts are pruned);
* states unreachable from the start state over the remaining transitions;
* transitions from/to removed states.

The result accepts exactly the same buffers as the input.  If the
accepting state itself becomes unreachable the pattern can never match;
:func:`trim` reports that instead of returning a broken automaton.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..complexity.bounds import conditions_conflict
from .automaton import SESAutomaton
from .states import State, state_label
from .transitions import Transition

__all__ = ["TrimReport", "trim"]


@dataclass
class TrimReport:
    """Outcome of one :func:`trim` pass."""

    #: The trimmed automaton (equal to the input when nothing was removed).
    automaton: SESAutomaton
    #: Transitions removed because their conditions are unsatisfiable.
    dead_transitions: Tuple[Transition, ...]
    #: States removed as unreachable.
    unreachable_states: Tuple[State, ...]
    #: True iff the accepting state is still reachable.
    satisfiable: bool

    @property
    def changed(self) -> bool:
        """True iff trimming removed anything."""
        return bool(self.dead_transitions or self.unreachable_states)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        if not self.satisfiable:
            return ("accepting state unreachable: the pattern can never "
                    "match (check the linter for conflicting conditions)")
        if not self.changed:
            return "nothing to trim"
        dead = ", ".join(
            f"{state_label(t.source)}--{t.variable!r}-->"
            f"{state_label(t.target)}" for t in self.dead_transitions)
        states = ", ".join(state_label(s) for s in sorted(
            self.unreachable_states, key=state_label))
        parts = []
        if self.dead_transitions:
            parts.append(f"removed {len(self.dead_transitions)} dead "
                         f"transition(s): {dead}")
        if self.unreachable_states:
            parts.append(f"removed {len(self.unreachable_states)} "
                         f"unreachable state(s): {states}")
        return "; ".join(parts)


def _transition_viable(transition: Transition) -> bool:
    """False iff the transition's constant conditions provably conflict."""
    constants = [c for c in transition.conditions if c.is_constant]
    for i, a in enumerate(constants):
        for b in constants[i + 1:]:
            if conditions_conflict(a, b):
                return False
    return True


def trim(automaton: SESAutomaton) -> TrimReport:
    """Remove dead transitions and unreachable states (see module docs)."""
    dead: List[Transition] = []
    viable: List[Transition] = []
    for transition in automaton.transitions:
        if _transition_viable(transition):
            viable.append(transition)
        else:
            dead.append(transition)

    # Reachability over the viable transitions.
    outgoing: Dict[State, List[Transition]] = {}
    for transition in viable:
        outgoing.setdefault(transition.source, []).append(transition)
    reachable: Set[State] = {automaton.start}
    queue = deque([automaton.start])
    while queue:
        state = queue.popleft()
        for transition in outgoing.get(state, ()):
            if transition.target not in reachable:
                reachable.add(transition.target)
                queue.append(transition.target)

    satisfiable = automaton.accepting in reachable
    unreachable = tuple(sorted(automaton.states - reachable,
                               key=state_label))
    kept_transitions = [t for t in viable
                        if t.source in reachable and t.target in reachable]

    if not satisfiable:
        return TrimReport(automaton=automaton,
                          dead_transitions=tuple(dead),
                          unreachable_states=unreachable,
                          satisfiable=False)
    if not dead and not unreachable:
        return TrimReport(automaton=automaton, dead_transitions=(),
                          unreachable_states=(), satisfiable=True)

    trimmed = SESAutomaton(
        states=reachable,
        transitions=kept_transitions,
        start=automaton.start,
        accepting=automaton.accepting,
        tau=automaton.tau,
    )
    return TrimReport(automaton=trimmed,
                      dead_transitions=tuple(dead),
                      unreachable_states=unreachable,
                      satisfiable=True)
