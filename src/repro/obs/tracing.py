"""Span-based tracing: where does the wall-clock time go?

A :class:`SpanTracer` times named stages with the monotonic clock
(:func:`time.perf_counter`) via a nesting-aware context manager::

    spans = SpanTracer()
    with spans.span("feed"):
        with spans.span("filter"):
            admitted = event_filter.admits(event)
        with spans.span("consume"):
            ...

Per-stage aggregates distinguish *total* time (span open, children
included) from *self* time (children excluded), so nested stages do not
double-count when reading a breakdown.  Individual span records are kept
only when ``keep_records=True`` — aggregation alone is O(1) memory,
which is what the per-event hot path needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "StageStats", "SpanTracer"]


@dataclass
class Span:
    """One recorded span (only kept when the tracer retains records)."""

    name: str
    start: float
    duration: float = 0.0
    depth: int = 0

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, depth={self.depth})"


@dataclass
class StageStats:
    """Aggregate timings for one stage name."""

    name: str
    count: int = 0
    #: Wall-clock seconds with the span open (children included).
    total_seconds: float = 0.0
    #: Seconds spent in the span itself (child spans excluded).
    self_seconds: float = 0.0

    def merge(self, other: "StageStats") -> None:
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.self_seconds += other.self_seconds


class _SpanContext:
    """Reusable context manager driving :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_name", "_start", "_child_seconds")

    def __init__(self, tracer: "SpanTracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        self._start = tracer._clock()
        self._child_seconds = 0.0
        tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        duration = tracer._clock() - self._start
        stack = tracer._stack
        stack.pop()
        stats = tracer._stages.get(self._name)
        if stats is None:
            stats = tracer._stages[self._name] = StageStats(self._name)
        stats.count += 1
        stats.total_seconds += duration
        stats.self_seconds += duration - self._child_seconds
        if stack:
            stack[-1]._child_seconds += duration
        if tracer._records is not None:
            tracer._records.append(
                Span(self._name, self._start, duration, depth=len(stack)))


class SpanTracer:
    """Times named, possibly nested stages on the monotonic clock.

    Parameters
    ----------
    keep_records:
        Retain every individual :class:`Span` (timeline debugging).
        Off by default: aggregates only, O(#stage-names) memory.
    clock:
        Injectable time source for tests; defaults to
        :func:`time.perf_counter`.
    """

    def __init__(self, keep_records: bool = False, clock=time.perf_counter):
        self._clock = clock
        self._stack: List[_SpanContext] = []
        self._stages: Dict[str, StageStats] = {}
        self._records: Optional[List[Span]] = [] if keep_records else None

    def span(self, name: str) -> _SpanContext:
        """Context manager timing one occurrence of stage ``name``."""
        return _SpanContext(self, name)

    @property
    def records(self) -> List[Span]:
        """Individual spans (empty unless ``keep_records=True``)."""
        return list(self._records or ())

    @property
    def depth(self) -> int:
        """Current nesting depth (open spans)."""
        return len(self._stack)

    def stages(self) -> Dict[str, StageStats]:
        """Aggregated per-stage timings, insertion-ordered."""
        return dict(self._stages)

    def total_seconds(self, name: str) -> float:
        """Total seconds recorded under stage ``name`` (0.0 if unseen)."""
        stats = self._stages.get(name)
        return stats.total_seconds if stats is not None else 0.0

    def merge(self, other: "SpanTracer") -> "SpanTracer":
        """Fold another tracer's aggregates into this one."""
        for name, stats in other._stages.items():
            mine = self._stages.get(name)
            if mine is None:
                self._stages[name] = StageStats(
                    name, stats.count, stats.total_seconds, stats.self_seconds)
            else:
                mine.merge(stats)
        return self

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> "SpanTracer":
        """Fold exported :meth:`snapshot` stage records back in.

        The wire-format counterpart of :meth:`merge`, used to aggregate
        stage timings reported by worker processes.  Records whose type
        is not ``"stage"`` are ignored.
        """
        for name, record in snapshot.items():
            if record.get("type") != "stage":
                continue
            incoming = StageStats(name, record["count"],
                                  record["total_seconds"],
                                  record["self_seconds"])
            mine = self._stages.get(name)
            if mine is None:
                self._stages[name] = incoming
            else:
                mine.merge(incoming)
        return self

    def snapshot(self) -> Dict[str, dict]:
        """Stage aggregates as plain dicts (exporter-ready)."""
        return {
            name: {
                "type": "stage",
                "count": stats.count,
                "total_seconds": stats.total_seconds,
                "self_seconds": stats.self_seconds,
            }
            for name, stats in self._stages.items()
        }

    def __repr__(self) -> str:
        stages = ", ".join(
            f"{s.name}:{s.total_seconds * 1e3:.1f}ms" for s in self._stages.values())
        return f"SpanTracer({stages or 'empty'})"
