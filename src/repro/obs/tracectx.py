"""Trace contexts: compact causal identity for ingested events.

Every event entering an instrumented pipeline gets a :class:`TraceContext`
— a deterministic trace id, the wall-clock ingest timestamp, and the list
of process/shard *hops* it has traversed.  The context is small enough to
ride the existing wire formats (an optional fourth element on the codec's
event tuple, see :mod:`repro.parallel.codec`), survives WAL replay after
supervised restarts unchanged, and is cheap enough to stamp on every
event even when full lineage retention is sampled down.

Identity is *content-derived*: :func:`trace_id_for` hashes the event's
timestamp and id (falling back to its attributes when it has no id), so
the same event yields the same trace id in the parent, in a pool worker,
in a shard, and during a WAL replay — which is what makes exactly-once
attribution possible without coordination.

Sampling is equally deterministic: :func:`sampled` maps the trace id onto
``[0, 1)`` and compares against the configured rate, so every process
agrees on which traces are kept without exchanging state.  Tail-based
retention (slow and quarantined traces are always kept) is layered on
top by :class:`~repro.obs.lineage.LineageRecorder`.

Configuration comes from three environment knobs (read once per
:meth:`TraceConfig.from_env` call, typically at ``Observability``
construction):

* ``REPRO_TRACE_SAMPLE`` — sampling rate in ``[0, 1]``; ``0`` (the
  default) disables tracing entirely and the executor binds the
  un-instrumented feed, exactly like a disabled ``ResourceGuard``.
* ``REPRO_TRACE_SLOW_MS`` — end-to-end latency above which an unsampled
  trace is promoted to "kept" at delivery (default 100 ms).
* ``REPRO_TRACE_MAX`` — retention bound on lineage records (default
  1024); trace contexts use a small multiple of this bound.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "TRACE_SAMPLE_ENV", "TRACE_SLOW_MS_ENV", "TRACE_MAX_ENV",
    "TraceConfig", "TraceContext", "trace_id_for", "sampled",
]

#: Environment knob: sampling rate in ``[0, 1]`` (``0`` disables tracing).
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"
#: Environment knob: slow-trace promotion threshold, milliseconds.
TRACE_SLOW_MS_ENV = "REPRO_TRACE_SLOW_MS"
#: Environment knob: lineage-record retention bound.
TRACE_MAX_ENV = "REPRO_TRACE_MAX"

#: Trace ids are 64-bit blake2b digests rendered as 16 hex chars.
_ID_BITS = 64
_ID_SPAN = 2 ** _ID_BITS


@dataclass(frozen=True)
class TraceConfig:
    """Sampling policy for the lineage layer.

    ``sample_rate == 0`` means tracing is off: ``Observability`` creates
    no recorder and the executor's feed stays un-instrumented.
    """

    sample_rate: float = 0.0
    slow_seconds: float = 0.1
    max_traces: int = 1024

    def __post_init__(self):
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}")
        if self.max_traces < 1:
            raise ValueError("max_traces must be positive")

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    @classmethod
    def from_env(cls, environ=None) -> "TraceConfig":
        """Read the ``REPRO_TRACE_*`` knobs (malformed values fall back
        to the defaults rather than breaking pipeline construction)."""
        environ = os.environ if environ is None else environ

        def _read(name, default, convert):
            raw = environ.get(name)
            if raw is None:
                return default
            try:
                return convert(raw)
            except (TypeError, ValueError):
                return default

        rate = _read(TRACE_SAMPLE_ENV, 0.0, float)
        slow_ms = _read(TRACE_SLOW_MS_ENV, 100.0, float)
        max_traces = _read(TRACE_MAX_ENV, 1024, int)
        return cls(sample_rate=min(max(rate, 0.0), 1.0),
                   slow_seconds=max(slow_ms, 0.0) / 1000.0,
                   max_traces=max(max_traces, 1))


def trace_id_for(event) -> str:
    """Deterministic 16-hex trace id for ``event``.

    Derived from ``(ts, eid)``; events without an id fall back to their
    sorted attribute items so distinct anonymous events still diverge.
    """
    if event.eid is not None:
        key = repr((event.ts, event.eid))
    else:
        key = repr((event.ts, tuple(sorted(event.attributes.items(),
                                           key=lambda kv: kv[0]))))
    return hashlib.blake2b(key.encode("utf-8"), digest_size=8).hexdigest()


def sampled(trace_id: str, rate: float) -> bool:
    """Deterministic sampling decision: maps the id onto ``[0, 1)``."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id, 16) < rate * _ID_SPAN


class TraceContext:
    """A single event's causal identity: id, ingest time, hop list.

    ``hops`` records ``(site, stage, wall_ts)`` triples — e.g.
    ``("main", "ingest", ...)`` then ``("shard:2", "recv", ...)`` — in
    the order the event traversed them.
    """

    __slots__ = ("trace_id", "ingest_ts", "hops")

    def __init__(self, trace_id: str, ingest_ts: float,
                 hops: Optional[List[Tuple[str, str, float]]] = None):
        self.trace_id = trace_id
        self.ingest_ts = ingest_ts
        self.hops = list(hops) if hops else []

    @classmethod
    def for_event(cls, event, site: str = "main") -> "TraceContext":
        now = time.time()
        ctx = cls(trace_id_for(event), now)
        ctx.hops.append((site, "ingest", now))
        return ctx

    def hop(self, site: str, stage: str) -> "TraceContext":
        self.hops.append((site, stage, time.time()))
        return self

    # -- wire format (plain tuples, picklable and WAL-safe) ------------
    def to_wire(self) -> tuple:
        return (self.trace_id, self.ingest_ts, tuple(self.hops))

    @classmethod
    def from_wire(cls, wire) -> "TraceContext":
        trace_id, ingest_ts, hops = wire
        return cls(trace_id, ingest_ts, [tuple(h) for h in hops])

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "ingest_ts": self.ingest_ts,
                "hops": [list(h) for h in self.hops]}

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id}, "
                f"hops={[f'{s}/{st}' for s, st, _ in self.hops]})")
