"""Flight recorder: a fixed-size ring buffer over recent execution steps.

A crashed worker or a degrading long-running matcher leaves no evidence
unless someone was tracing — and full tracing is far too expensive to
leave on in production.  :class:`FlightRecorder` is the middle ground:
a preallocated ring buffer that keeps only the *tail* of execution —
the most recent :class:`~repro.automaton.trace.TraceStep`-shaped records
(``start`` / ``transition`` / ``skip`` / ``drop`` / ``expire`` /
``accept`` / ``flush``, the Algorithm 1 vocabulary), a bounded timeline
of ``|Ω|`` samples, and the fingerprints of the plans that ran — at O(1)
append cost and fixed memory.

It plugs into the executor through the same hook as the full tracer
(``SESExecutor(..., flight=recorder)``), so attaching it adds **no new
branches** to the hot path; detached (the default) the executor is
byte-for-byte the code PR 1 shipped.  Records are stored as compact
tuples and only rendered to dicts at dump time.

The dump surfaces in three ways:

* a worker crash — ``repro.parallel`` workers run their own recorder
  and pickle the tail back to the parent, which attaches it to the
  raised :class:`~repro.parallel.errors.WorkerCrashed` as
  ``flight_dump``;
* an unhandled exception in :meth:`SESExecutor.run` — the dump is
  attached to the escaping exception as ``flight_dump``;
* on demand — ``SIGUSR2`` (see :func:`install_flight_signal_handler`)
  or the ``/debug/flight`` route of :class:`repro.obs.live.ObsServer`.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from typing import List, Optional

__all__ = ["FlightRecorder", "install_flight_signal_handler"]

#: Default ring capacities: step records and |Ω| samples kept.
DEFAULT_CAPACITY = 512
DEFAULT_OMEGA_CAPACITY = 256

#: Positional layout of one step tuple (kept in sync with record()).
_FIELDS = ("seq", "kind", "ts", "event", "state", "variable", "born")


class FlightRecorder:
    """Bounded, preallocated recorder of recent execution steps.

    Implements the :class:`~repro.automaton.trace.Tracer` recording
    interface (:meth:`record`), so it attaches anywhere a tracer does;
    unlike the tracer it never grows — the oldest records are
    overwritten once ``capacity`` is reached, so what remains is always
    the tail of execution leading up to now.

    Parameters
    ----------
    capacity:
        Step records retained (ring size).
    omega_capacity:
        ``(ts, |Ω|)`` samples retained (separate ring, so a burst of
        step records cannot evict the population timeline).

    Thread-safety: appends are single-writer (one executor); dumps from
    another thread (HTTP endpoint, signal handler) take an internal lock
    only while copying the ring out.
    """

    __slots__ = ("capacity", "omega_capacity", "_steps", "_next", "_seq",
                 "_omega", "_omega_next", "_omega_seq", "_plans", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 omega_capacity: int = DEFAULT_OMEGA_CAPACITY):
        if capacity < 1 or omega_capacity < 1:
            raise ValueError("flight recorder capacities must be >= 1")
        self.capacity = capacity
        self.omega_capacity = omega_capacity
        self._steps: List[Optional[tuple]] = [None] * capacity
        self._next = 0
        self._seq = 0
        self._omega: List[Optional[tuple]] = [None] * omega_capacity
        self._omega_next = 0
        self._omega_seq = 0
        self._plans: List[str] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record(self, kind: str, event, instance,
               transition=None, successor=None) -> None:
        """Append one step record (Tracer-compatible signature), O(1)."""
        buffer = instance.buffer
        self._steps[self._next] = (
            self._seq, kind,
            None if event is None else event.ts,
            None if event is None else event.eid,
            instance.state,
            None if transition is None else repr(transition.variable),
            buffer.min_ts,
        )
        self._seq += 1
        self._next = (self._next + 1) % self.capacity

    def sample_omega(self, ts, size: int) -> None:
        """Append one ``(ts, |Ω|)`` sample to the population ring, O(1)."""
        self._omega[self._omega_next] = (ts, size)
        self._omega_seq += 1
        self._omega_next = (self._omega_next + 1) % self.omega_capacity

    def note_crash(self, event, message: str) -> None:
        """Append a synthetic ``crash`` record naming the event under
        processing when an exception escaped.

        Called by the crash hooks (executor ``run()``, pool and shard
        workers), never from the hot path, so the dump's **last** step
        points at the poisoned input rather than at whatever happened to
        execute just before it.
        """
        self._steps[self._next] = (
            self._seq, "crash",
            None if event is None else event.ts,
            None if event is None else event.eid,
            None, message, None)
        self._seq += 1
        self._next = (self._next + 1) % self.capacity

    def note_plan(self, fingerprint: str) -> None:
        """Remember a plan fingerprint that executed under this recorder."""
        if fingerprint not in self._plans:
            self._plans.append(fingerprint)

    def clear(self) -> None:
        """Drop everything recorded so far (capacity is kept)."""
        with self._lock:
            self._steps = [None] * self.capacity
            self._next = 0
            self._seq = 0
            self._omega = [None] * self.omega_capacity
            self._omega_next = 0
            self._omega_seq = 0
            self._plans = []

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Step records currently retained (≤ capacity)."""
        return min(self._seq, self.capacity)

    @property
    def recorded(self) -> int:
        """Total step records ever appended (including overwritten)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Step records lost to ring overwrites."""
        return max(0, self._seq - self.capacity)

    def _tail_tuples(self) -> List[tuple]:
        with self._lock:
            if self._seq <= self.capacity:
                return [s for s in self._steps[:self._next]]
            return ([s for s in self._steps[self._next:]]
                    + [s for s in self._steps[:self._next]])

    def _omega_tuples(self) -> List[tuple]:
        with self._lock:
            if self._omega_seq <= self.omega_capacity:
                return [s for s in self._omega[:self._omega_next]]
            return ([s for s in self._omega[self._omega_next:]]
                    + [s for s in self._omega[:self._omega_next]])

    def tail(self, n: Optional[int] = None) -> List[dict]:
        """The retained step records, oldest first, as plain dicts.

        States are rendered with
        :func:`~repro.automaton.states.state_label` at export time so
        the hot path never pays for formatting.
        """
        from ..automaton.states import state_label
        tuples = self._tail_tuples()
        if n is not None:
            tuples = tuples[-n:]
        out = []
        for seq, kind, ts, eid, state, variable, born in tuples:
            record = {"seq": seq, "kind": kind, "ts": ts, "event": eid}
            if kind == "crash":
                # Synthetic note_crash record: the variable slot carries
                # the failure message, and there is no instance state.
                record["error"] = variable
            else:
                record["state"] = state_label(state)
                if variable is not None:
                    record["variable"] = variable
                if born is not None:
                    record["born"] = born
            out.append(record)
        return out

    def dump(self) -> dict:
        """The full JSON-ready dump: meta, |Ω| timeline, step tail."""
        return {
            "meta": {
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self.dropped,
                "plans": list(self._plans),
            },
            "omega": [list(sample) for sample in self._omega_tuples()],
            "steps": self.tail(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The dump as a JSON document (timestamps via ``str`` fallback)."""
        return json.dumps(self.dump(), indent=indent, default=str)

    def write(self, path) -> None:
        """Write :meth:`to_json` to ``path``."""
        from pathlib import Path
        Path(path).write_text(self.to_json(indent=2) + "\n", encoding="utf-8")

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self)}/{self.capacity} steps, "
                f"{self.dropped} dropped)")


def install_flight_signal_handler(recorder: FlightRecorder, signum=None,
                                  path=None, stream=None):
    """Dump ``recorder`` whenever ``signum`` (default ``SIGUSR2``) fires.

    The dump goes to ``path`` (a file, overwritten per signal) when
    given, otherwise to ``stream`` (default ``sys.stderr``).  Returns
    the installed handler, or ``None`` on platforms without the signal
    (Windows has no ``SIGUSR2``).  Must be called from the main thread
    (CPython restricts ``signal.signal`` to it).
    """
    if signum is None:
        signum = getattr(signal, "SIGUSR2", None)
        if signum is None:  # pragma: no cover - Windows
            return None

    def _dump_flight(signo, frame):
        if path is not None:
            recorder.write(path)
        else:
            out = stream if stream is not None else sys.stderr
            out.write(recorder.to_json(indent=2) + "\n")
            out.flush()

    signal.signal(signum, _dump_flight)
    return _dump_flight
