"""Metric primitives and the registry (the observability data model).

Three metric kinds, deliberately Prometheus-shaped so the exporters in
:mod:`repro.obs.exporters` are trivial:

* :class:`Counter` — monotonically increasing count (events read,
  transitions fired, buffers accepted);
* :class:`Gauge` — a value that goes up and down, with a high-water mark
  (the instance population ``|Ω|``, live partitions);
* :class:`Histogram` — distribution over *fixed* bucket boundaries
  (per-event feed latency, instance lifetimes).  Fixed buckets keep
  observation O(#buckets) with zero allocation and make registries
  mergeable across partitions.

A :class:`MetricsRegistry` owns named metrics (get-or-create), renders
point-in-time :meth:`~MetricsRegistry.snapshot` dictionaries, and merges
sibling registries (per-partition aggregation).  :data:`NULL_REGISTRY`
is the shared no-op registry: every metric it hands out swallows updates,
so library code can instrument unconditionally once it holds a metric
handle.  Hot paths that cannot afford even a no-op call should keep the
usual ``if obs is not None`` guard instead.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "LATENCY_BUCKETS", "LIFETIME_BUCKETS",
    "estimate_quantile", "snapshot_quantile",
]

#: Default buckets for per-event feed latency, in seconds.  Pure-Python
#: event processing sits between ~1 µs and ~100 ms per event.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
)

#: Default buckets for automaton-instance lifetimes, in *time units* of
#: the event relation (the paper's τ is 264 for the chemo workload).
LIFETIME_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
)


def _label_fields(metric) -> dict:
    """The optional ``labels``/``metric`` snapshot fields of a labeled
    metric (empty for the common unlabeled case).

    A labeled metric is registered under a unique registry key (e.g.
    ``ses_pattern_matches_total[checkout]``) while ``metric`` names the
    real exposition-format metric and ``labels`` its label set; the
    Prometheus exporter renders them as ``name{k="v"} value`` with label
    values escaped.
    """
    out = {}
    if metric.labels:
        out["labels"] = dict(metric.labels)
    if metric.metric:
        out["metric"] = metric.metric
    return out


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "value", "labels", "metric")
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict] = None,
                 metric: Optional[str] = None):
        self.name = name
        self.help = help
        self.value = 0
        self.labels = labels
        self.metric = metric

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help, "value": self.value,
                **_label_fields(self)}

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that rises and falls; remembers its high-water mark."""

    __slots__ = ("name", "help", "value", "max_value", "labels", "metric")
    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict] = None,
                 metric: Optional[str] = None):
        self.name = name
        self.help = help
        self.value = 0
        self.max_value = 0
        self.labels = labels
        self.metric = metric

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount=1) -> None:
        self.set(self.value + amount)

    def dec(self, amount=1) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help, "value": self.value,
                "max": self.max_value, **_label_fields(self)}

    def merge(self, other: "Gauge") -> None:
        """Aggregate a sibling gauge: values add, high-waters add.

        Partition gauges describe disjoint instance populations, so the
        aggregate population is the sum.  (Summing high-waters
        over-approximates the true simultaneous peak; it is an upper
        bound, which is the conservative direction for capacity.)
        """
        self.value += other.value
        self.max_value += other.max_value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """A fixed-boundary histogram (cumulative-style on export).

    ``buckets`` are the upper bounds of the non-overflow buckets; an
    implicit ``+Inf`` bucket catches the rest.  ``observe`` is
    O(log #buckets) via bisect.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        return {
            "type": self.kind, "help": self.help,
            "buckets": [list(pair) for pair in zip(self.bounds, self.counts)],
            "overflow": self.counts[-1],
            "sum": self.sum, "count": self.count,
        }

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (see :func:`estimate_quantile`);
        ``None`` while the histogram is empty."""
        return estimate_quantile(self.bounds, self.counts, q)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6g})"


def estimate_quantile(bounds: Sequence[float], counts: Sequence[int],
                      q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    ``bounds`` are the non-overflow upper bounds, ``counts`` the
    per-bucket tallies including the trailing overflow bucket
    (``len(counts) == len(bounds) + 1``).  Linear interpolation within
    the bucket holding the target rank — the same estimator Prometheus's
    ``histogram_quantile`` uses.  Observations in the overflow bucket
    have no upper bound, so quantiles landing there clamp to the highest
    finite bound.  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            if index >= len(bounds):
                return float(bounds[-1])
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            if count == 0:
                return float(upper)
            return lower + (upper - lower) * (target - previous) / count
    return float(bounds[-1])


def snapshot_quantile(record: dict, q: float) -> Optional[float]:
    """:func:`estimate_quantile` over an exported histogram snapshot
    record (the ``{"buckets": [[bound, count], ...], "overflow": n}``
    shape produced by :meth:`Histogram.snapshot`)."""
    if record.get("type") != "histogram":
        return None
    buckets = record.get("buckets", ())
    bounds = [bound for bound, _ in buckets]
    counts = [count for _, count in buckets]
    counts.append(record.get("overflow", 0))
    if not bounds:
        return None
    return estimate_quantile(bounds, counts, q)


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    Accessors are idempotent: asking twice for the same name returns the
    same object, so independent call sites can share a metric.  Asking
    for an existing name with a *different* kind raises.
    """

    #: False on :class:`NullRegistry`; lets callers skip expensive
    #: observation work (snapshotting, history) when metrics go nowhere.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[dict] = None,
                metric: Optional[str] = None) -> Counter:
        return self._get(Counter, name, help=help, labels=labels,
                         metric=metric)

    def gauge(self, name: str, help: str = "",
              labels: Optional[dict] = None,
              metric: Optional[str] = None) -> Gauge:
        return self._get(Gauge, name, help=help, labels=labels,
                         metric=metric)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help=help, buckets=buckets)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, dict]:
        """Point-in-time ``{name: state}`` view, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into this registry (sum semantics).

        Metrics present only in ``other`` are deep-copied in; metrics
        present in both are combined per-kind (counters and histograms
        add, gauges add values and high-waters — see :meth:`Gauge.merge`).
        Returns ``self`` for chaining.
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name, help=metric.help, labels=metric.labels,
                             metric=metric.metric).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(name, help=metric.help, labels=metric.labels,
                           metric=metric.metric).merge(metric)
            elif isinstance(metric, Histogram):
                self.histogram(name, help=metric.help,
                               buckets=metric.bounds).merge(metric)
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the sum of ``registries``."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> "MetricsRegistry":
        """Fold an exported :meth:`snapshot` back into this registry.

        The wire-format counterpart of :meth:`merge`: worker processes
        cannot share registry objects, so they ship ``snapshot()`` dicts
        across the process boundary and the parent folds them in here
        with the same per-kind semantics (counters and histograms add,
        gauges add values and high-waters).  Records of unknown type
        (e.g. ``stage`` spans, which belong to the tracer) are ignored.

        Malformed records — e.g. a *partial* snapshot handed back from a
        crashed worker, with histogram fields missing or truncated —
        raise :class:`ValueError` **before** any mutation, so a failed
        merge never leaves this registry's bucket counts corrupted.
        """
        for name, record in snapshot.items():
            kind = record.get("type")
            if kind == "counter":
                try:
                    value = record["value"]
                except KeyError:
                    raise ValueError(
                        f"partial counter record {name!r}: missing value")
                self.counter(name, help=record.get("help", ""),
                             labels=record.get("labels"),
                             metric=record.get("metric")).inc(value)
            elif kind == "gauge":
                try:
                    value = record["value"]
                except KeyError:
                    raise ValueError(
                        f"partial gauge record {name!r}: missing value")
                gauge = self.gauge(name, help=record.get("help", ""),
                                   labels=record.get("labels"),
                                   metric=record.get("metric"))
                gauge.value += value
                gauge.max_value += record.get("max", value)
            elif kind == "histogram":
                # Read and validate every field before touching the
                # live histogram: a record that fails halfway must not
                # leave counts incremented with sum/count unchanged.
                try:
                    buckets = record["buckets"]
                    incoming_sum = record["sum"]
                    incoming_count = record["count"]
                except KeyError as missing:
                    raise ValueError(
                        f"partial histogram record {name!r}: missing "
                        f"{missing}")
                bounds = tuple(bound for bound, _ in buckets)
                counts = [count for _, count in buckets]
                counts.append(record.get("overflow", 0))
                histogram = self.histogram(name, help=record.get("help", ""),
                                           buckets=bounds)
                if histogram.bounds != bounds:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds "
                        f"differ")
                if len(counts) != len(histogram.counts):
                    raise ValueError(
                        f"partial histogram record {name!r}: "
                        f"{len(counts) - 1} bucket(s), expected "
                        f"{len(histogram.counts) - 1}")
                histogram.counts = [a + b for a, b in
                                    zip(histogram.counts, counts)]
                histogram.sum += incoming_sum
                histogram.count += incoming_count
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._metrics)} metrics)"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose metrics discard every update.

    Handed out as the default so instrumented code needs no branches;
    all accessors return shared do-nothing singletons.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null", buckets=(1,))

    def counter(self, name: str, help: str = "",
                labels: Optional[dict] = None,
                metric: Optional[str] = None) -> Counter:
        return self._counter

    def gauge(self, name: str, help: str = "",
              labels: Optional[dict] = None,
              metric: Optional[str] = None) -> Gauge:
        return self._gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._histogram

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def merge(self, other: MetricsRegistry) -> MetricsRegistry:
        return self

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> MetricsRegistry:
        return self


#: Shared default no-op registry.
NULL_REGISTRY = NullRegistry()
