"""Snapshot exporters: JSON-lines files and Prometheus text format.

Both exporters consume the plain-dict snapshots produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` /
:meth:`repro.obs.Observability.snapshot` — ``{name: record}`` where each
record carries a ``"type"`` of ``counter``, ``gauge``, ``histogram`` or
``stage``.

* **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl`): one metric
  per line, ``{"name": ..., "type": ..., ...}``, safe to append across
  runs and trivially diffable — the format the CI benchmark artifact and
  ``repro stats`` use.
* **Prometheus text format** (:func:`to_prometheus`): the 0.0.4
  exposition format — counters and gauges verbatim, histograms as
  cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``,
  stages as a ``_seconds_total``/``_calls_total`` pair.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["write_jsonl", "read_jsonl", "to_jsonl", "to_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus exposition format."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _prom_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def to_jsonl(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot as JSON lines (one metric per line)."""
    lines = [json.dumps({"name": name, **record}, sort_keys=True)
             for name, record in snapshot.items()]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(snapshot: Dict[str, dict], path: Union[str, Path],
                append: bool = False) -> Path:
    """Write a snapshot to ``path`` as JSON lines; returns the path."""
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        fh.write(to_jsonl(snapshot))
    return path


def read_jsonl(path: Union[str, Path]) -> Dict[str, dict]:
    """Load a JSON-lines snapshot back into ``{name: record}`` form.

    Blank lines are skipped; on duplicate names (appended runs) the last
    record wins, matching "newest snapshot" expectations.
    """
    snapshot: Dict[str, dict] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        name = record.pop("name")
        snapshot[name] = record
    return snapshot


def to_prometheus(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    out: List[str] = []
    for name, record in snapshot.items():
        kind = record.get("type", "gauge")
        pname = _prom_name(name)
        help_text = record.get("help", "")
        if help_text:
            out.append(f"# HELP {pname} {help_text}")
        if kind == "counter":
            out.append(f"# TYPE {pname} counter")
            out.append(f"{pname} {_prom_value(record['value'])}")
        elif kind == "gauge":
            out.append(f"# TYPE {pname} gauge")
            out.append(f"{pname} {_prom_value(record['value'])}")
            if "max" in record:
                out.append(f"# TYPE {pname}_max gauge")
                out.append(f"{pname}_max {_prom_value(record['max'])}")
        elif kind == "histogram":
            out.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in record["buckets"]:
                cumulative += count
                out.append(
                    f'{pname}_bucket{{le="{_prom_value(float(bound))}"}} '
                    f"{cumulative}")
            out.append(f'{pname}_bucket{{le="+Inf"}} {record["count"]}')
            out.append(f"{pname}_sum {_prom_value(record['sum'])}")
            out.append(f"{pname}_count {record['count']}")
        elif kind == "stage":
            out.append(f"# TYPE {pname}_seconds_total counter")
            out.append(
                f"{pname}_seconds_total {_prom_value(record['total_seconds'])}")
            out.append(f"# TYPE {pname}_calls_total counter")
            out.append(f"{pname}_calls_total {record['count']}")
        else:  # unknown kinds degrade to a gauge with whatever value exists
            out.append(f"# TYPE {pname} untyped")
            out.append(f"{pname} {_prom_value(record.get('value', 0))}")
    return "\n".join(out) + ("\n" if out else "")
