"""Snapshot exporters: JSON-lines files and Prometheus text format.

Both exporters consume the plain-dict snapshots produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` /
:meth:`repro.obs.Observability.snapshot` — ``{name: record}`` where each
record carries a ``"type"`` of ``counter``, ``gauge``, ``histogram`` or
``stage``.

* **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl`): one metric
  per line, ``{"name": ..., "type": ..., ...}``, safe to append across
  runs and trivially diffable — the format the CI benchmark artifact and
  ``repro stats`` use.
* **Prometheus text format** (:func:`to_prometheus`): the 0.0.4
  exposition format — counters and gauges verbatim, histograms as
  cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``,
  stages as a ``_seconds_total``/``_calls_total`` pair.
* **Chrome trace event JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`): spans as duration events and automaton
  instance lifecycles as async events, loadable in ``ui.perfetto.dev``
  or ``chrome://tracing``.
* **OTel-flavoured span JSON** (:func:`to_otel_spans` /
  :func:`write_otel_spans`): lineage records rendered in the
  OTLP/JSON ``resourceSpans`` shape — one span per match from ingest
  to delivery plus per-stage child spans — ingestible by any OTLP/HTTP
  collector without an SDK dependency.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["write_jsonl", "read_jsonl", "to_jsonl", "to_prometheus",
           "to_chrome_trace", "write_chrome_trace",
           "to_otel_spans", "write_otel_spans"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus exposition format."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _prom_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash, newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _prom_label_value(value) -> str:
    """Escape a label value per the exposition format.

    Order matters: backslashes first, then quotes and newlines — pattern
    *names* are user-controlled and may contain any of them.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(record: dict, extra: str = "") -> str:
    """The ``{k="v",...}`` label block for a record (may be empty).

    ``extra`` is a pre-rendered label pair (the histogram ``le``) merged
    after the record's own labels.
    """
    pairs = [f'{_prom_name(key)}="{_prom_label_value(value)}"'
             for key, value in sorted(record.get("labels", {}).items())]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_jsonl(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot as JSON lines (one metric per line)."""
    lines = [json.dumps({"name": name, **record}, sort_keys=True)
             for name, record in snapshot.items()]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(snapshot: Dict[str, dict], path: Union[str, Path],
                append: bool = False) -> Path:
    """Write a snapshot to ``path`` as JSON lines; returns the path."""
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        fh.write(to_jsonl(snapshot))
    return path


def read_jsonl(path: Union[str, Path]) -> Dict[str, dict]:
    """Load a JSON-lines snapshot back into ``{name: record}`` form.

    Blank lines are skipped; on duplicate names (appended runs) the last
    record wins, matching "newest snapshot" expectations.
    """
    snapshot: Dict[str, dict] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        name = record.pop("name")
        snapshot[name] = record
    return snapshot


def to_prometheus(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    A record may carry a ``"labels"`` dict, rendered as a label block on
    every sample with values escaped per the format (``\\``, ``"`` and
    newlines — pattern names are user-controlled).  A labeled record may
    also carry a ``"metric"`` key naming the real metric when the
    snapshot key had to stay unique (e.g. ``ses_pattern_runs_total[x]``);
    ``# TYPE``/``# HELP`` headers are emitted once per metric name.
    """
    out: List[str] = []
    typed: set = set()

    def header(pname: str, kind: str, help_text: str) -> None:
        if pname in typed:
            return
        typed.add(pname)
        if help_text:
            out.append(f"# HELP {pname} {_prom_help(help_text)}")
        out.append(f"# TYPE {pname} {kind}")

    for name, record in snapshot.items():
        kind = record.get("type", "gauge")
        if kind == "lineage":
            # Lineage rides Observability.snapshot() for cross-process
            # merging; it is structured data, not a scrapeable sample.
            continue
        pname = _prom_name(record.get("metric", name))
        help_text = record.get("help", "")
        labels = _prom_labels(record)
        if kind == "counter":
            header(pname, "counter", help_text)
            out.append(f"{pname}{labels} {_prom_value(record['value'])}")
        elif kind == "gauge":
            header(pname, "gauge", help_text)
            out.append(f"{pname}{labels} {_prom_value(record['value'])}")
            if "max" in record:
                header(f"{pname}_max", "gauge", "")
                out.append(f"{pname}_max{labels} "
                           f"{_prom_value(record['max'])}")
        elif kind == "histogram":
            header(pname, "histogram", help_text)
            cumulative = 0
            for bound, count in record["buckets"]:
                cumulative += count
                le = f'le="{_prom_value(float(bound))}"'
                out.append(f"{pname}_bucket{_prom_labels(record, le)} "
                           f"{cumulative}")
            # Cumulative invariant: the +Inf bucket must equal _count.
            # Derive both from the bucket counts (+ the overflow bucket)
            # so a snapshot whose redundant "count" field disagrees —
            # e.g. a partial dump from a crashed worker — still renders
            # a monotonic series instead of +Inf < the last finite le.
            overflow = record.get("overflow")
            if overflow is None:
                overflow = max(record.get("count", cumulative) - cumulative, 0)
            total = cumulative + overflow
            inf_labels = _prom_labels(record, 'le="+Inf"')
            out.append(f"{pname}_bucket{inf_labels} {total}")
            out.append(f"{pname}_sum{labels} {_prom_value(record['sum'])}")
            out.append(f"{pname}_count{labels} {total}")
        elif kind == "stage":
            header(f"{pname}_seconds_total", "counter", help_text)
            out.append(f"{pname}_seconds_total{labels} "
                       f"{_prom_value(record['total_seconds'])}")
            header(f"{pname}_calls_total", "counter", "")
            out.append(f"{pname}_calls_total{labels} {record['count']}")
        else:  # unknown kinds degrade to a gauge with whatever value exists
            header(pname, "untyped", help_text)
            out.append(f"{pname}{labels} {_prom_value(record.get('value', 0))}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# Chrome trace event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
#: Synthetic process ids used in the trace: wall-clock spans and
#: event-time instance lifecycles live in different time domains, so
#: they are rendered as two separate "processes".
SPAN_PID = 1
INSTANCE_PID = 2
LINEAGE_PID = 3

#: Step kinds that terminate an automaton instance's lifecycle.
_LIFECYCLE_ENDS = ("expire", "accept", "flush")


def _span_records(spans):
    """Normalise a spans argument: SpanTracer, or iterable of Span."""
    if spans is None:
        return []
    records = getattr(spans, "records", None)
    return records if records is not None else list(spans)


def _lifecycle_records(steps, flight):
    """``(kind, end_ts, born_ts, label)`` per finished instance.

    ``steps`` is an iterable of :class:`~repro.automaton.trace.TraceStep`
    (or a Tracer); ``flight`` a FlightRecorder, its :meth:`dump` dict, or
    a list of step dicts.  Both name the same Algorithm 1 vocabulary, so
    lifecycles are read uniformly: an instance born at its buffer's
    ``min_ts`` ends when an expire/accept/flush step records it.
    """
    out = []
    if steps is not None:
        for step in getattr(steps, "steps", steps):
            if step.kind not in _LIFECYCLE_ENDS:
                continue
            end = step.event.ts if step.event is not None else None
            born = step.instance.buffer.min_ts
            label = (step.event.eid or str(step.event.ts)
                     if step.event is not None else "EOF")
            out.append((step.kind, end, born, label))
    if flight is not None:
        if hasattr(flight, "dump"):
            flight = flight.dump()
        records = flight["steps"] if isinstance(flight, dict) else flight
        for record in records:
            if record.get("kind") not in _LIFECYCLE_ENDS:
                continue
            out.append((record["kind"], record.get("ts"),
                        record.get("born"), record.get("event") or "EOF"))
    return out


def _lineage_records(lineage):
    """Normalise a lineage argument: LineageRecorder, LineageReport, or
    an iterable of :class:`~repro.obs.lineage.Provenance` records."""
    if lineage is None:
        return []
    records = getattr(lineage, "records", None)
    if callable(records):
        return records()
    if records is not None:
        return list(records)
    return list(lineage)


def to_chrome_trace(spans=None, steps=None, flight=None,
                    lineage=None) -> dict:
    """Render spans and instance lifecycles as a Chrome trace document.

    Parameters
    ----------
    spans:
        A :class:`~repro.obs.tracing.SpanTracer` built with
        ``keep_records=True`` (or an iterable of its ``Span`` records).
        Each span becomes a complete duration event (``"ph": "X"``) with
        microsecond timestamps on the monotonic clock, nested by depth.
    steps:
        A :class:`~repro.automaton.trace.Tracer` (or its step list).
        Every finished instance (spawn → accept/expire/flush) becomes an
        async event pair (``"ph": "b"``/``"e"``) spanning the instance's
        event-time lifetime — one event-time unit is rendered as one
        microsecond.
    flight:
        A :class:`~repro.obs.flight.FlightRecorder` (or its dump), read
        the same way as ``steps``.
    lineage:
        A :class:`~repro.obs.lineage.LineageRecorder` (or its report, or
        an iterable of :class:`~repro.obs.lineage.Provenance` records).
        Each sampled match becomes an async event pair spanning its
        ingest-to-delivery wall-clock window, with per-stage timestamps
        in the event args.

    Returns the ``{"traceEvents": [...]}`` document; load it at
    ``ui.perfetto.dev`` or ``chrome://tracing``.
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": SPAN_PID, "tid": 0,
         "args": {"name": "repro stages (wall clock)"}},
        {"name": "process_name", "ph": "M", "pid": INSTANCE_PID, "tid": 0,
         "args": {"name": "repro instances (event time)"}},
    ]
    lineage_records = _lineage_records(lineage)
    if lineage_records:
        events.append(
            {"name": "process_name", "ph": "M", "pid": LINEAGE_PID,
             "tid": 0, "args": {"name": "repro lineage (wall clock)"}})
        for index, record in enumerate(lineage_records):
            stamps = [ts for ts in record.stages.values() if ts is not None]
            if not stamps:
                continue
            begin, finish = min(stamps), max(stamps)
            name = f"match {record.match_id}"
            common = {"cat": "lineage", "id": index, "pid": LINEAGE_PID,
                      "tid": 0}
            events.append({
                "name": name, "ph": "b", "ts": begin * 1e6,
                "args": {"events": list(record.event_ids),
                         "path": list(record.path),
                         "delivered_by": record.delivered_by,
                         "stages": dict(record.stages)},
                **common})
            events.append({"name": name, "ph": "e", "ts": finish * 1e6,
                           **common})
    for span in _span_records(spans):
        events.append({
            "name": span.name, "cat": "stage", "ph": "X",
            "ts": span.start * 1e6, "dur": span.duration * 1e6,
            "pid": SPAN_PID, "tid": span.depth,
        })
    for index, (kind, end, born, label) in enumerate(
            _lifecycle_records(steps, flight)):
        if end is None and born is None:
            continue
        begin = born if born is not None else end
        finish = end if end is not None else born
        name = f"instance {kind} @{label}"
        common = {"cat": "instance", "id": index, "pid": INSTANCE_PID,
                  "tid": 0}
        events.append({"name": name, "ph": "b", "ts": float(begin),
                       **common})
        events.append({"name": name, "ph": "e", "ts": float(finish),
                       **common})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path], spans=None, steps=None,
                       flight=None, lineage=None) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    path = Path(path)
    document = to_chrome_trace(spans=spans, steps=steps, flight=flight,
                               lineage=lineage)
    path.write_text(json.dumps(document, default=str) + "\n",
                    encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# OTel-flavoured span JSON (OTLP/JSON resourceSpans shape)
# ----------------------------------------------------------------------
def _otel_trace_id(record) -> str:
    """A 32-hex OTLP trace id for a lineage record.

    Derived from the first contributing event's trace id (16 hex,
    zero-padded) so every span of the same causal chain shares it; falls
    back to hashing the match id for records without contexts.
    """
    if record.trace_ids:
        return record.trace_ids[0].zfill(32)
    return hashlib.blake2b(record.match_id.encode("utf-8"),
                           digest_size=16).hexdigest()


def _otel_span_id(*parts) -> str:
    """A 16-hex OTLP span id derived from ``parts``."""
    return hashlib.blake2b("\x00".join(str(p) for p in parts).encode("utf-8"),
                           digest_size=8).hexdigest()


def _otel_attr(key, value) -> dict:
    if isinstance(value, bool):
        return {"key": key, "value": {"boolValue": value}}
    if isinstance(value, int):
        return {"key": key, "value": {"intValue": str(value)}}
    if isinstance(value, float):
        return {"key": key, "value": {"doubleValue": value}}
    return {"key": key, "value": {"stringValue": str(value)}}


def _otel_nanos(ts) -> str:
    return str(int(ts * 1e9))


def to_otel_spans(lineage, service: str = "repro") -> dict:
    """Render lineage records in the OTLP/JSON ``resourceSpans`` shape.

    ``lineage`` is a :class:`~repro.obs.lineage.LineageRecorder`, a
    :class:`~repro.obs.lineage.LineageReport`, or an iterable of
    :class:`~repro.obs.lineage.Provenance` records.  Each record becomes
    a root span covering its full ingest-to-delivery window plus one
    child span per adjacent stage pair (``ingest→recv``,
    ``accept→deliver``, ...), so collectors show the same per-stage
    latency breakdown :meth:`Provenance.stage_breakdown` computes.  Ids
    are content-derived — the trace id extends the first contributing
    event's trace id, the span id the match id — so spans exported from
    different processes for the same match coincide instead of
    duplicating.

    Built by hand against the OTLP/JSON field names (stdlib only; no
    opentelemetry SDK) — POST the document to an OTLP/HTTP collector's
    ``/v1/traces`` endpoint as-is.
    """
    spans: List[dict] = []
    for record in _lineage_records(lineage):
        stamped = sorted(
            ((stage, ts) for stage, ts in record.stages.items()
             if ts is not None), key=lambda item: item[1])
        if not stamped:
            continue
        trace_id = _otel_trace_id(record)
        root_id = (record.match_id.zfill(16)
                   if not record.match_id.count(":")
                   else _otel_span_id(record.match_id))
        begin, finish = stamped[0][1], stamped[-1][1]
        attributes = [
            _otel_attr("ses.match_id", record.match_id),
            _otel_attr("ses.kept", record.kept or "unsampled"),
            _otel_attr("ses.delivered", record.delivered),
            _otel_attr("ses.event_ids", ",".join(record.event_ids)),
            _otel_attr("ses.path", ",".join(record.path)),
        ]
        if record.pattern_id is not None:
            attributes.append(_otel_attr("ses.pattern_id",
                                         record.pattern_id))
        if record.partition is not None:
            attributes.append(_otel_attr("ses.partition", record.partition))
        if record.delivered_by is not None:
            attributes.append(_otel_attr("ses.delivered_by",
                                         record.delivered_by))
        spans.append({
            "traceId": trace_id, "spanId": root_id,
            "name": f"ses.match {record.match_id}", "kind": 1,
            "startTimeUnixNano": _otel_nanos(begin),
            "endTimeUnixNano": _otel_nanos(finish),
            "attributes": attributes,
        })
        for (stage, start), (next_stage, end) in zip(stamped, stamped[1:]):
            spans.append({
                "traceId": trace_id,
                "spanId": _otel_span_id(record.match_id, stage, next_stage),
                "parentSpanId": root_id,
                "name": f"ses.stage {stage}→{next_stage}", "kind": 1,
                "startTimeUnixNano": _otel_nanos(start),
                "endTimeUnixNano": _otel_nanos(end),
                "attributes": [_otel_attr("ses.stage", next_stage)],
            })
    return {
        "resourceSpans": [{
            "resource": {"attributes": [
                _otel_attr("service.name", service)]},
            "scopeSpans": [{"scope": {"name": "repro.obs.lineage"},
                            "spans": spans}],
        }],
    }


def write_otel_spans(path: Union[str, Path], lineage,
                     service: str = "repro") -> Path:
    """Write :func:`to_otel_spans` output to ``path``; returns the path."""
    path = Path(path)
    document = to_otel_spans(lineage, service=service)
    path.write_text(json.dumps(document, default=str) + "\n",
                    encoding="utf-8")
    return path
