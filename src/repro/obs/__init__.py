"""Unified observability: metrics, span tracing, exporters, logging.

This package is the one instrumentation surface for the whole engine —
the executor hot path, the Section 4.5 pre-filter, the streaming
runners, the benchmark harness and the CLI all report through it.

The façade is :class:`Observability`: a metrics registry
(:mod:`repro.obs.metrics`) plus a span tracer (:mod:`repro.obs.tracing`)
with convenience handles for the engine's standard instruments.
Instrumentation is **opt-in and zero-cost when off**: every instrumented
API takes ``obs=None`` and the hot paths guard with a single ``is not
None`` check, so measurement runs pay nothing (the ``--profile``
overhead target is tracked in ``benchmarks/bench_exp1_instances.py``).

Usage::

    from repro.obs import Observability

    obs = Observability()
    result = match(pattern, relation, obs=obs)
    print(obs.stage_table())            # filter / consume / select
    write_jsonl(obs.snapshot(), "metrics.jsonl")
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .exporters import (read_jsonl, to_chrome_trace, to_jsonl, to_otel_spans,
                        to_prometheus, write_chrome_trace, write_jsonl,
                        write_otel_spans)
from .flight import FlightRecorder, install_flight_signal_handler
from .lineage import LineageRecorder, LineageReport, Provenance, match_id
from .live import ObsServer, live_snapshot, parse_listen
from .logs import configure_logging, get_logger, verbosity_level
from .metrics import (LATENCY_BUCKETS, LIFETIME_BUCKETS, NULL_REGISTRY,
                      Counter, Gauge, Histogram, MetricsRegistry, NullRegistry,
                      estimate_quantile, snapshot_quantile)
from .tracectx import (TraceConfig, TraceContext, sampled, trace_id_for,
                       TRACE_MAX_ENV, TRACE_SAMPLE_ENV, TRACE_SLOW_MS_ENV)
from .tracing import Span, SpanTracer, StageStats

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "LATENCY_BUCKETS", "LIFETIME_BUCKETS",
    "Span", "SpanTracer", "StageStats", "Observability",
    "FlightRecorder", "ObsServer",
    "LineageRecorder", "LineageReport", "Provenance", "TraceConfig",
    "TraceContext", "match_id", "sampled", "trace_id_for",
    "TRACE_MAX_ENV", "TRACE_SAMPLE_ENV", "TRACE_SLOW_MS_ENV",
    "configure_logging", "get_logger", "verbosity_level",
    "estimate_quantile", "snapshot_quantile",
    "install_flight_signal_handler", "live_snapshot", "parse_listen",
    "read_jsonl", "to_chrome_trace", "to_jsonl", "to_otel_spans",
    "to_prometheus", "write_chrome_trace", "write_jsonl",
    "write_otel_spans",
]

#: The engine's canonical stage names, in pipeline order.
STAGES = ("filter", "consume", "select")


class Observability:
    """A metrics registry and span tracer travelling together.

    Parameters
    ----------
    registry:
        Backing registry; a fresh :class:`MetricsRegistry` by default,
        :data:`NULL_REGISTRY` for an explicit no-op bundle.
    spans:
        Backing tracer; fresh by default.
    lineage:
        Optional :class:`~repro.obs.lineage.LineageRecorder` for match
        provenance and causal tracing.  When omitted, one is created
        automatically iff the ``REPRO_TRACE_SAMPLE`` environment knob
        enables sampling — worker processes construct plain
        ``Observability()`` bundles, so tracing propagates across
        process boundaries through the inherited environment.

    The engine-standard instruments (``|Ω|`` gauge, per-event latency and
    instance-lifetime histograms) are created lazily on first use so a
    bundle only carries what its run actually touched.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanTracer] = None,
                 lineage: Optional[LineageRecorder] = None):
        self.registry = MetricsRegistry() if registry is None else registry
        self.spans = SpanTracer() if spans is None else spans
        if lineage is None:
            config = TraceConfig.from_env()
            lineage = (LineageRecorder(config, registry=self.registry)
                       if config.enabled else None)
        elif lineage._registry is NULL_REGISTRY:
            # An injected recorder built without a registry publishes its
            # latency histograms and counters through this bundle.
            lineage.bind_metrics(self.registry)
        self.lineage = lineage
        r = self.registry
        self._omega = r.gauge(
            "ses_omega_instances",
            help="active automaton instances |omega| (max = peak)")
        self._latency = r.histogram(
            "ses_event_latency_seconds",
            help="per-event feed() wall-clock latency",
            buckets=LATENCY_BUCKETS)
        self._lifetime = r.histogram(
            "ses_instance_lifetime",
            help="lifetime of expired instances, in event-time units",
            buckets=LIFETIME_BUCKETS)

    @property
    def enabled(self) -> bool:
        """False when backed by the no-op registry."""
        return self.registry.enabled

    # ------------------------------------------------------------------
    # Hot-path instruments (the executor calls these per event)
    # ------------------------------------------------------------------
    def omega(self, size: int) -> None:
        """Record the current |Ω| (gauge + high-water mark)."""
        self._omega.set(size)

    def event_seconds(self, seconds: float) -> None:
        """Observe one event's feed() latency."""
        self._latency.observe(seconds)

    def lifetime(self, span: float) -> None:
        """Observe the event-time lifetime of an expired instance."""
        self._lifetime.observe(span)

    def span(self, name: str):
        """Shorthand for ``self.spans.span(name)``."""
        return self.spans.span(name)

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------
    def merge(self, other: "Observability") -> "Observability":
        """Fold another bundle's metrics and stage timings into this one."""
        self.registry.merge(other.registry)
        self.spans.merge(other.spans)
        if (other.lineage is not None
                and other.lineage is not self.lineage):
            self.ensure_lineage().absorb(other.lineage.export_record())
        return self

    def ensure_lineage(self) -> LineageRecorder:
        """The lineage recorder, created on demand (used when worker
        snapshots arrive carrying lineage the parent did not ask for)."""
        if self.lineage is None:
            self.lineage = LineageRecorder(TraceConfig.from_env(),
                                           registry=self.registry)
        return self.lineage

    @classmethod
    def merged(cls, bundles: Iterable["Observability"]) -> "Observability":
        """A fresh bundle aggregating ``bundles`` (per-partition roll-up)."""
        out = cls()
        for bundle in bundles:
            out.merge(bundle)
        return out

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> "Observability":
        """Fold an exported :meth:`snapshot` back into this bundle.

        The cross-process counterpart of :meth:`merge`: worker processes
        (``repro.parallel``) cannot hand back live registries, so they
        export ``snapshot()`` dicts and the parent aggregates them here.
        Stage records (prefixed ``repro_stage_`` by :meth:`snapshot`) go
        to the tracer, everything else to the registry.
        """
        stages = {}
        metrics = {}
        for name, record in snapshot.items():
            kind = record.get("type")
            if kind == "stage":
                if name.startswith("repro_stage_"):
                    name = name[len("repro_stage_"):]
                stages[name] = record
            elif kind == "lineage":
                self.ensure_lineage().absorb(record)
            else:
                metrics[name] = record
        self.registry.merge_snapshot(metrics)
        self.spans.merge_snapshot(stages)
        return self

    def snapshot(self) -> Dict[str, dict]:
        """Registry metrics plus per-stage timings, exporter-ready.

        Stage aggregates appear under ``repro_stage_<name>`` so one flat
        snapshot feeds both exporters.
        """
        snapshot = self.registry.snapshot()
        for name, record in self.spans.snapshot().items():
            snapshot[f"repro_stage_{name}"] = record
        if self.lineage is not None:
            snapshot["repro_lineage"] = self.lineage.export_record()
        return snapshot

    def stage_rows(self):
        """``[stage, calls, total s, self s, share]`` rows for tabulation.

        Share is each stage's *self* time as a fraction of the summed
        self time, so nested spans don't push the column past 100 %.
        """
        stages = self.spans.stages()
        total_self = sum(s.self_seconds for s in stages.values()) or 1.0
        ordered = [n for n in STAGES if n in stages]
        ordered += [n for n in stages if n not in STAGES]
        return [
            [name, stages[name].count, stages[name].total_seconds,
             stages[name].self_seconds,
             f"{100 * stages[name].self_seconds / total_self:.1f}%"]
            for name in ordered
        ]

    def __repr__(self) -> str:
        return (f"Observability({len(self.registry)} metrics, "
                f"{len(self.spans.stages())} stages)")
