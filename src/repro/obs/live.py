"""Live runtime introspection over HTTP (stdlib only).

:class:`ObsServer` exposes a running engine's observability state on a
small ``http.server``-based endpoint — no dependencies, safe to embed in
the CLI or any host application:

============== =========================================================
route          payload
============== =========================================================
``/metrics``   Prometheus text exposition (via
               :func:`repro.obs.exporters.to_prometheus`)
``/varz``      the raw metrics snapshot as JSON
``/healthz``   liveness JSON — ``200`` when healthy, ``503`` when a
               health provider reports degradation (dead shards, …)
``/debug/flight``  the flight-recorder tail as JSON (``404`` when no
               recorder is attached)
``/debug/explain``  the current pattern's EXPLAIN report as JSON
               (``404`` when no explain provider is attached)
``/debug/lineage``  the lineage recorder's summary plus sampled match
               ids as JSON; ``/debug/lineage/<match_id>`` returns one
               match's full provenance record (``404`` when no lineage
               provider is attached or the id is unknown)
``/patterns``  the pattern registry: ``GET`` lists registered patterns,
               ``POST`` registers the query in the JSON body, and
               ``DELETE /patterns/<id>`` deregisters — hot, against the
               running process (``404`` when no registry is attached;
               see ``docs/registry.md``)
``/quitquitquit``  ``POST`` only: invoke the ``on_quit`` callback
               (graceful remote shutdown for ``repro serve``)
============== =========================================================

The server runs on a daemon thread (:meth:`start` returns the bound
address immediately); providers are callables evaluated per request, so
the payloads always reflect live state.  Binding port ``0`` picks an
ephemeral port — read it back from :attr:`port` / :attr:`url`.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from .exporters import to_prometheus

__all__ = ["ObsServer", "parse_listen", "live_snapshot"]

logger = logging.getLogger(__name__)

#: ``Content-Type`` of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``(healthy, detail)`` returned by a health provider.
HealthReport = Tuple[bool, dict]


def parse_listen(spec: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` listen spec (``:PORT`` means localhost)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"invalid listen address {spec!r}; expected HOST:PORT")
    return (host or "127.0.0.1", int(port))


#: Default per-connection socket timeout for handler threads.  Keep-alive
#: (HTTP/1.1) handler threads otherwise block forever in ``readline()``
#: on a silent client, leaking one thread per abandoned connection.
DEFAULT_HANDLER_TIMEOUT = 30.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ObsServer`'s providers."""

    server_version = "repro-obs/1.0"
    protocol_version = "HTTP/1.1"
    #: ``BaseHTTPRequestHandler`` applies this as the connection's socket
    #: timeout; a timeout mid-request sets ``close_connection`` and ends
    #: the handler thread instead of hanging it.
    timeout = DEFAULT_HANDLER_TIMEOUT

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        obs_server: "ObsServer" = self.server.obs_server
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                snapshot = obs_server.read_snapshot()
                self._reply(200, to_prometheus(snapshot),
                            PROMETHEUS_CONTENT_TYPE)
            elif path == "/varz":
                self._reply_json(200, obs_server.read_snapshot())
            elif path == "/healthz":
                healthy, detail = obs_server.read_health()
                self._reply_json(200 if healthy else 503, detail)
            elif path == "/debug/flight":
                dump = obs_server.read_flight()
                if dump is None:
                    self._reply_json(404,
                                     {"error": "no flight recorder attached"})
                else:
                    self._reply_json(200, dump)
            elif path == "/debug/explain":
                report = obs_server.read_explain()
                if report is None:
                    self._reply_json(404,
                                     {"error": "no explain provider attached"})
                else:
                    self._reply_json(200, report)
            elif path == "/debug/lineage" or path.startswith("/debug/lineage/"):
                match_id = (path[len("/debug/lineage/"):]
                            if path.startswith("/debug/lineage/") else None)
                status, payload = obs_server.read_lineage(match_id or None)
                self._reply_json(status, payload)
            elif path == "/patterns":
                patterns = obs_server.patterns
                if patterns is None:
                    self._reply_json(404,
                                     {"error": "no pattern registry attached"})
                else:
                    self._reply_json(*patterns.list())
            elif path == "/":
                self._reply_json(200, {"routes": sorted(obs_server.routes)})
            else:
                self._reply_json(404, {"error": f"unknown route {path!r}"})
        except Exception as exc:  # a broken provider must not kill the server
            logger.exception("obs endpoint %s failed", path)
            self._reply_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        obs_server: "ObsServer" = self.server.obs_server
        path = self.path.split("?", 1)[0]
        if path == "/quitquitquit":
            self._reply_json(200, {"quitting": True})
            obs_server.request_quit()
        elif path == "/patterns":
            patterns = obs_server.patterns
            if patterns is None:
                self._reply_json(404,
                                 {"error": "no pattern registry attached"})
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
                payload = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply_json(400, {"error": f"invalid JSON body: {exc}"})
                return
            try:
                self._reply_json(*patterns.add(payload))
            except Exception as exc:  # registration must not kill the server
                logger.exception("pattern registration failed")
                self._reply_json(500,
                                 {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply_json(404, {"error": f"unknown route {path!r}"})

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        obs_server: "ObsServer" = self.server.obs_server
        path = self.path.split("?", 1)[0]
        prefix = "/patterns/"
        if path.startswith(prefix) and len(path) > len(prefix):
            patterns = obs_server.patterns
            if patterns is None:
                self._reply_json(404,
                                 {"error": "no pattern registry attached"})
                return
            try:
                self._reply_json(*patterns.remove(path[len(prefix):]))
            except Exception as exc:
                logger.exception("pattern deregistration failed")
                self._reply_json(500,
                                 {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply_json(404, {"error": f"unknown route {path!r}"})

    def _reply_json(self, status: int, payload) -> None:
        self._reply(status, json.dumps(payload, indent=2, default=str) + "\n",
                    "application/json")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        logger.debug("obs http: %s", format % args)


class ObsServer:
    """Serves live engine state over HTTP from a daemon thread.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` (default) picks an ephemeral port.
    snapshot:
        Callable returning the metrics snapshot dict (e.g.
        ``obs.snapshot``) backing ``/metrics`` and ``/varz``.
    health:
        Callable returning ``(healthy, detail_dict)`` backing
        ``/healthz``; without one the endpoint reports a plain
        ``{"status": "ok"}``.
    flight:
        A :class:`~repro.obs.flight.FlightRecorder` (or a callable
        returning a dump dict) backing ``/debug/flight``.
    explain:
        Callable returning the EXPLAIN report dict for the served
        pattern(s) (e.g. ``lambda: explain(plan).to_dict()``) backing
        ``/debug/explain``; the route 404s without one.
    patterns:
        A :class:`~repro.registry.service.RegistryHTTPAdapter` backing
        the ``/patterns`` routes (GET list / POST register /
        DELETE ``/patterns/<id>``); the routes 404 without one.
    lineage:
        A :class:`~repro.obs.lineage.LineageRecorder` (or a callable
        returning one, e.g. ``lambda: obs.lineage``) backing
        ``/debug/lineage`` and ``/debug/lineage/<match_id>``; the
        routes 404 without one.
    on_quit:
        Callback invoked by ``POST /quitquitquit`` (e.g. an Event's
        ``set``); the route 404s without one.
    handler_timeout:
        Per-connection socket timeout (seconds) applied to every
        handler thread; a client that stops sending mid-request is
        disconnected instead of pinning its thread forever.

    Usable as a context manager (``with ObsServer(...) as server:``);
    :meth:`stop` is idempotent.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 snapshot: Optional[Callable[[], Dict[str, dict]]] = None,
                 health: Optional[Callable[[], HealthReport]] = None,
                 flight=None,
                 explain: Optional[Callable[[], dict]] = None,
                 patterns=None,
                 lineage=None,
                 on_quit: Optional[Callable[[], None]] = None,
                 handler_timeout: float = DEFAULT_HANDLER_TIMEOUT):
        self._snapshot = snapshot
        self._health = health
        self._flight = flight
        self._explain = explain
        self.patterns = patterns
        self._lineage = lineage
        self._on_quit = on_quit
        # Per-server handler class so a custom timeout does not leak
        # into other ObsServer instances in the same process.
        handler = _Handler
        if handler_timeout != _Handler.timeout:
            handler = type("_Handler", (_Handler,),
                           {"timeout": handler_timeout})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.obs_server = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Provider access (called from handler threads)
    # ------------------------------------------------------------------
    @property
    def routes(self) -> Tuple[str, ...]:
        routes = ["/metrics", "/varz", "/healthz"]
        if self._flight is not None:
            routes.append("/debug/flight")
        if self._explain is not None:
            routes.append("/debug/explain")
        if self._lineage is not None:
            routes.append("/debug/lineage")
        if self.patterns is not None:
            routes.append("/patterns")
        if self._on_quit is not None:
            routes.append("/quitquitquit")
        return tuple(routes)

    def read_snapshot(self) -> Dict[str, dict]:
        return {} if self._snapshot is None else self._snapshot()

    def read_health(self) -> HealthReport:
        if self._health is None:
            return True, {"status": "ok"}
        return self._health()

    def read_flight(self) -> Optional[dict]:
        flight = self._flight
        if flight is None:
            return None
        return flight() if callable(flight) else flight.dump()

    def read_explain(self) -> Optional[dict]:
        return None if self._explain is None else self._explain()

    def read_lineage(self, match_id: Optional[str] = None):
        """``(status, payload)`` for the lineage routes.

        Without ``match_id``: the recorder summary plus the sampled
        match ids.  With one: that match's full provenance record.
        """
        lineage = self._lineage
        if callable(lineage):
            lineage = lineage()
        if lineage is None:
            return 404, {"error": "no lineage provider attached"}
        if match_id is None:
            return 200, {"summary": lineage.summary(),
                         "match_ids": [record.match_id
                                       for record in lineage.records()]}
        record = lineage.get(match_id)
        if record is None:
            return 404, {"error": f"unknown match id {match_id!r}"}
        return 200, record.to_dict()

    def request_quit(self) -> None:
        if self._on_quit is not None:
            self._on_quit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        """Begin serving on a daemon thread; returns ``self``."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-http-{self.port}", daemon=True)
        self._thread.start()
        logger.info("obs endpoint listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._thread is None:
            self._httpd.server_close()
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"ObsServer({self.url}, {state})"


def live_snapshot(observability=None) -> Dict[str, dict]:
    """The full live ``/varz`` snapshot: engine metrics plus plan-cache
    counters, a derived prefilter selectivity, and per-pattern sections
    from the statistics store.

    The plan cache publishes its counters only at compile time; served
    endpoints outlive compilation, so this helper re-reads
    :meth:`~repro.plan.cache.PlanCache.stats` on every call.  Likewise
    ``ses_prefilter_selectivity`` is only set by the serial batch path —
    when absent it is derived here from the filtered/read counters so
    streaming and pooled runs expose it too.  Per-pattern records carry
    ``labels``/``metric`` keys understood by
    :func:`~repro.obs.exporters.to_prometheus`.
    """
    from ..explain.stats import stats_store
    from ..plan.cache import plan_cache

    snapshot: Dict[str, dict] = (
        {} if observability is None else observability.snapshot())
    cache_stats = plan_cache().stats()
    snapshot["ses_plan_cache_hits_total"] = {
        "type": "counter", "value": cache_stats["hits"],
        "help": "plan cache lookups served from cache"}
    snapshot["ses_plan_cache_misses_total"] = {
        "type": "counter", "value": cache_stats["misses"],
        "help": "plan cache lookups that compiled a new plan"}
    snapshot["ses_plan_cache_evictions_total"] = {
        "type": "counter", "value": cache_stats["evictions"],
        "help": "plans evicted from the cache (LRU)"}
    snapshot["ses_plan_cache_size"] = {
        "type": "gauge", "value": cache_stats["size"],
        "max": cache_stats["maxsize"],
        "help": "compiled plans currently cached"}

    if "ses_prefilter_selectivity" not in snapshot:
        read = snapshot.get("ses_events_read_total", {}).get("value", 0)
        filtered = snapshot.get(
            "ses_events_filtered_total", {}).get("value", 0)
        if read:
            snapshot["ses_prefilter_selectivity"] = {
                "type": "gauge", "value": filtered / read,
                "help": "fraction of read events rejected by the "
                        "pre-filter (derived from counters)"}

    store = stats_store()
    for fingerprint in store.fingerprints():
        record = store.get(fingerprint)
        if record is None:
            continue
        labels = {"pattern": fingerprint}
        for field, help_text in (
                ("runs", "observed runs for this pattern"),
                ("events", "events read for this pattern"),
                ("matches", "matches reported for this pattern")):
            snapshot[f"ses_pattern_{field}_total[{fingerprint}]"] = {
                "type": "counter", "value": record.get(field, 0),
                "metric": f"ses_pattern_{field}_total",
                "labels": labels, "help": help_text}
        selectivity = store.prefilter_selectivity(fingerprint)
        if selectivity is not None:
            snapshot[f"ses_pattern_prefilter_selectivity[{fingerprint}]"] = {
                "type": "gauge", "value": selectivity,
                "metric": "ses_pattern_prefilter_selectivity",
                "labels": labels,
                "help": "fraction of events the pre-filter rejected "
                        "for this pattern (persisted statistics)"}
    return snapshot
