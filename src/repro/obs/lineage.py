"""Match provenance: event-to-delivery lineage with latency accounting.

The :class:`LineageRecorder` answers "why did this match fire?" — which
events joined it, which transitions fired in what order, how long each
pipeline stage took, and which process/shard delivered it.  One recorder
instance serves a whole process: it implements the executor tracer
protocol (so transition paths are observed, not inferred), is stamped at
every delivery site (``query``, ``ContinuousMatcher``, the sharded
parent, the registry), and ships its state across process boundaries as
a plain-dict record riding the existing observability snapshots.

Identity is content-derived on both axes: events get deterministic trace
ids (:func:`~repro.obs.tracectx.trace_id_for`) and matches get
deterministic match ids (:func:`match_id`, a digest of the canonical
binding sequence).  The same match therefore maps to the same id in a
pool worker, a shard, and a WAL replay after a supervised restart —
merging worker records into the parent and detecting duplicate or orphan
deliveries reduces to dictionary operations keyed by those ids, which is
what makes exactly-once attribution checkable.

Retention is tail-based: traces selected by the deterministic sampler
are kept, quarantined events are always kept, and unsampled matches
whose end-to-end latency exceeds the configured slow threshold are
promoted to kept at delivery.  Everything else is dropped once its
delivery has been counted, so memory stays bounded by
``TraceConfig.max_traces``.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .metrics import NULL_REGISTRY
from .tracectx import TraceConfig, TraceContext, sampled, trace_id_for

__all__ = ["match_id", "Provenance", "LineageRecorder", "LineageReport"]

#: End-to-end latency crosses process hand-offs, so the buckets extend
#: well past the per-feed-call ``LATENCY_BUCKETS``.
E2E_BUCKETS: Tuple[float, ...] = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
)

#: Stage keys in pipeline order (used by renderers and the stage
#: breakdown histograms).
STAGES = ("ingest", "recv", "accept", "report", "deliver", "quarantine")


def match_id(substitution) -> str:
    """Deterministic 16-hex id of a match (its canonical bindings).

    Hashes the substitution's canonical binding order — ``(event ts,
    variable name, event id)`` sorted — so every process that sees the
    same set of bindings computes the same id without coordination.
    """
    parts = tuple(
        (variable.name, event.ts,
         event.eid if event.eid is not None else trace_id_for(event))
        for variable, event in substitution)
    return hashlib.blake2b(repr(parts).encode("utf-8"),
                           digest_size=8).hexdigest()


#: ``kept`` reasons, in priority order (later reasons win on merge).
_KEPT_PRIORITY = {None: 0, "sampled": 1, "slow": 2, "quarantined": 3}


class Provenance:
    """One delivered match's lineage record.

    Attributes mirror the wire dict produced by :meth:`to_dict`:
    contributing event ids and trace ids (chronological), the transition
    path as the sequence of variable names bound (one per transition
    fired), wall-clock per-stage timestamps, the delivering site, and
    the delivery count (exactly-once means it ends at 1).
    """

    __slots__ = ("match_id", "pattern_id", "partition", "event_ids",
                 "trace_ids", "path", "stages", "delivered_by",
                 "delivered", "kept")

    def __init__(self, match_id: str, event_ids: Tuple[str, ...] = (),
                 trace_ids: Tuple[str, ...] = (),
                 path: Tuple[str, ...] = (), pattern_id=None,
                 partition=None, stages: Optional[Dict[str, float]] = None,
                 delivered_by: Optional[str] = None, delivered: int = 0,
                 kept: Optional[str] = None):
        self.match_id = match_id
        self.pattern_id = pattern_id
        self.partition = partition
        self.event_ids = tuple(event_ids)
        self.trace_ids = tuple(trace_ids)
        self.path = tuple(path)
        self.stages = dict(stages) if stages else {}
        self.delivered_by = delivered_by
        self.delivered = delivered
        self.kept = kept

    def latency(self) -> Optional[float]:
        """End-to-end seconds, ingest to delivery (``None`` if either
        stage has not been stamped)."""
        start = self.stages.get("ingest")
        end = self.stages.get("deliver", self.stages.get("quarantine"))
        if start is None or end is None:
            return None
        return max(end - start, 0.0)

    def stage_breakdown(self) -> List[Tuple[str, float]]:
        """Consecutive ``(stage, seconds-since-previous-stage)`` pairs in
        pipeline order, skipping stages that were never stamped."""
        stamped = [(name, self.stages[name]) for name in STAGES
                   if name in self.stages]
        stamped.sort(key=lambda pair: pair[1])
        out = []
        for (_, prev_ts), (name, ts) in zip(stamped, stamped[1:]):
            out.append((name, max(ts - prev_ts, 0.0)))
        return out

    def to_dict(self) -> dict:
        return {
            "match_id": self.match_id, "pattern_id": self.pattern_id,
            "partition": self.partition,
            "event_ids": list(self.event_ids),
            "trace_ids": list(self.trace_ids),
            "path": list(self.path), "stages": dict(self.stages),
            "delivered_by": self.delivered_by,
            "delivered": self.delivered, "kept": self.kept,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Provenance":
        return cls(record["match_id"],
                   event_ids=tuple(record.get("event_ids", ())),
                   trace_ids=tuple(record.get("trace_ids", ())),
                   path=tuple(record.get("path", ())),
                   pattern_id=record.get("pattern_id"),
                   partition=record.get("partition"),
                   stages=record.get("stages"),
                   delivered_by=record.get("delivered_by"),
                   delivered=record.get("delivered", 0),
                   kept=record.get("kept"))

    def merge(self, other: "Provenance") -> None:
        """Fold a sibling record for the same match id (e.g. the shard
        worker's detail into the parent's delivery skeleton): missing
        fields fill in, stage timestamps keep the earliest stamp, and
        delivery counts add."""
        if other.pattern_id is not None and self.pattern_id is None:
            self.pattern_id = other.pattern_id
        if other.partition is not None and self.partition is None:
            self.partition = other.partition
        if other.event_ids and not self.event_ids:
            self.event_ids = other.event_ids
        if other.trace_ids and not self.trace_ids:
            self.trace_ids = other.trace_ids
        if other.path and not self.path:
            self.path = other.path
        for name, ts in other.stages.items():
            mine = self.stages.get(name)
            self.stages[name] = ts if mine is None else min(mine, ts)
        if self.delivered_by is None:
            self.delivered_by = other.delivered_by
        self.delivered += other.delivered
        if _KEPT_PRIORITY[other.kept] > _KEPT_PRIORITY[self.kept]:
            self.kept = other.kept

    def __repr__(self) -> str:
        return (f"Provenance({self.match_id}, events={list(self.event_ids)},"
                f" path={list(self.path)}, delivered={self.delivered},"
                f" by={self.delivered_by!r}, kept={self.kept!r})")


class LineageRecorder:
    """Per-process lineage state: contexts, paths, provenance records.

    Plugs into the executor as a tracer (``record`` implements the same
    protocol as :class:`~repro.obs.flight.FlightRecorder`), is stamped by
    delivery sites via :meth:`deliver`, and round-trips across process
    boundaries via :meth:`export_record` / :meth:`absorb`.

    ``authoritative`` marks the recorder that owns delivery accounting —
    the parent process.  Worker-side recorders (pool chunks, shard
    workers) set it ``False``: their :meth:`deliver` stamps the
    ``report`` stage instead of ``deliver``, they publish no latency
    histograms, and their exported delivery counts are zeroed so the
    parent's absorb never double-counts a delivery.
    """

    def __init__(self, config: Optional[TraceConfig] = None,
                 site: str = "main", registry=None):
        self.config = TraceConfig(sample_rate=1.0) if config is None \
            else config
        self.site = site
        self.authoritative = True
        self._registry = NULL_REGISTRY
        self._contexts: "OrderedDict[str, TraceContext]" = OrderedDict()
        self._records: "OrderedDict[str, Provenance]" = OrderedDict()
        # Match ids dropped by the sampler at delivery: a later worker
        # snapshot or duplicate delivery must not resurrect them.
        self._dropped: "OrderedDict[str, int]" = OrderedDict()
        self._paths: Dict[int, Tuple[str, ...]] = {}
        # The executor records "expire" before "accept" for the same
        # instance; stash the popped path so the acceptance still sees
        # the observed transition sequence.
        self._expired_path: Optional[Tuple[int, Tuple[str, ...]]] = None
        self._counts = {"ingested": 0, "records": 0, "sampled": 0,
                        "dropped": 0, "slow": 0, "quarantined": 0,
                        "duplicates": 0}
        self.bind_metrics(registry)

    def bind_metrics(self, registry) -> None:
        """Attach (or re-attach) the metric sinks; ``None`` keeps the
        recorder silent via the shared null registry."""
        self._registry = NULL_REGISTRY if registry is None else registry
        self._hist_e2e = self._registry.histogram(
            "ses_event_latency_e2e_seconds",
            help="End-to-end latency, event ingest to match delivery.",
            buckets=E2E_BUCKETS)
        self._hist_match = self._registry.histogram(
            "ses_event_latency_stage_match_seconds",
            help="Ingest-to-accept stage latency of delivered matches.",
            buckets=E2E_BUCKETS)
        self._hist_deliver = self._registry.histogram(
            "ses_event_latency_stage_deliver_seconds",
            help="Accept-to-delivery stage latency of delivered matches.",
            buckets=E2E_BUCKETS)
        self._ctr_records = self._registry.counter(
            "ses_lineage_records_total",
            help="Provenance records created.")
        self._ctr_sampled = self._registry.counter(
            "ses_lineage_sampled_total",
            help="Provenance records kept by the sampler.")
        self._ctr_dropped = self._registry.counter(
            "ses_lineage_dropped_total",
            help="Provenance records dropped after delivery accounting.")
        self._ctr_slow = self._registry.counter(
            "ses_lineage_slow_kept_total",
            help="Unsampled traces promoted to kept for being slow.")
        self._ctr_quarantined = self._registry.counter(
            "ses_lineage_quarantined_total",
            help="Quarantined events whose trace was force-kept.")
        self._ctr_duplicates = self._registry.counter(
            "ses_lineage_duplicate_deliveries_total",
            help="Matches delivered more than once (exactly-once "
                 "violations).")

    # ------------------------------------------------------------------
    # Ingest side
    # ------------------------------------------------------------------
    def note_ingest(self, event) -> Optional[TraceContext]:
        """Stamp ``event``'s trace context at this site (idempotent per
        trace id; re-seeing an event adds a hop, not a new context)."""
        trace_id = trace_id_for(event)
        ctx = self._contexts.get(trace_id)
        if ctx is None:
            ctx = TraceContext.for_event(event, site=self.site)
            ctx.trace_id = trace_id
            self._remember_context(ctx)
            self._counts["ingested"] += 1
        else:
            ctx.hop(self.site, "recv")
        return ctx

    def adopt(self, ctx_wire) -> Optional[TraceContext]:
        """Adopt an upstream context shipped on the wire (the sharded
        path: the parent stamps ingest, the worker adopts + hops)."""
        try:
            ctx = TraceContext.from_wire(ctx_wire)
        except (TypeError, ValueError):
            return None
        existing = self._contexts.get(ctx.trace_id)
        if existing is not None:
            return existing.hop(self.site, "recv")
        ctx.hop(self.site, "recv")
        self._remember_context(ctx)
        return ctx

    def context_for(self, event) -> Optional[TraceContext]:
        return self._contexts.get(trace_id_for(event))

    def _remember_context(self, ctx: TraceContext) -> None:
        self._contexts[ctx.trace_id] = ctx
        limit = self.config.max_traces * 4
        while len(self._contexts) > limit:
            self._contexts.popitem(last=False)

    # ------------------------------------------------------------------
    # Executor tracer protocol
    # ------------------------------------------------------------------
    def record(self, kind, event, instance, transition=None,
               successor=None) -> None:
        if kind == "start":
            self._paths[id(instance)] = ()
        elif kind == "transition":
            path = self._paths.get(id(instance), ())
            if successor is not None:
                self._paths[id(successor)] = path + \
                    (transition.variable.name,)
            else:
                self._paths[id(instance)] = path + \
                    (transition.variable.name,)
        elif kind == "accept" or kind == "flush":
            self._note_accept(instance)
        elif kind == "expire" or kind == "drop":
            path = self._paths.pop(id(instance), None)
            if path is not None:
                self._expired_path = (id(instance), path)

    def _note_accept(self, instance) -> None:
        substitution = instance.buffer.to_substitution()
        # Accepting does not terminate an instance (it may extend into
        # further matches), so the path is read, not popped.
        path = self._paths.get(id(instance))
        if path is None and self._expired_path is not None \
                and self._expired_path[0] == id(instance):
            path = self._expired_path[1]
        mid = match_id(substitution)
        record = self._records.get(mid)
        if record is None:
            record = self._new_record(mid, substitution)
        if path is not None and len(path) == len(substitution.bindings):
            record.path = path
        elif not record.path:
            # id() reuse or a checkpoint-restored instance lost the
            # observed path; fall back to the canonical binding order,
            # which is the order transitions fire for in-order streams.
            record.path = tuple(v.name for v, _ in substitution)
        record.stages.setdefault("accept", time.time())

    def _new_record(self, mid: str, substitution,
                    pattern_id=None, partition=None) -> Provenance:
        events = substitution.events()
        trace_ids = tuple(trace_id_for(e) for e in events)
        event_ids = tuple(
            e.eid if e.eid is not None else tid
            for e, tid in zip(events, trace_ids))
        stages = {}
        ingest = [self._contexts[t].ingest_ts for t in trace_ids
                  if t in self._contexts]
        if ingest:
            stages["ingest"] = min(ingest)
        kept = "sampled" if any(
            sampled(t, self.config.sample_rate) for t in trace_ids) else None
        record = Provenance(mid, event_ids=event_ids, trace_ids=trace_ids,
                            pattern_id=pattern_id, partition=partition,
                            stages=stages, kept=kept)
        self._records[mid] = record
        self._counts["records"] += 1
        self._ctr_records.inc()
        if kept is not None:
            self._counts["sampled"] += 1
            self._ctr_sampled.inc()
        while len(self._records) > self.config.max_traces:
            self._records.popitem(last=False)
        return record

    # ------------------------------------------------------------------
    # Delivery side
    # ------------------------------------------------------------------
    def deliver(self, substitution, by: Optional[str] = None,
                pattern_id=None, partition=None) -> Optional[Provenance]:
        """Stamp a delivery and return the match's provenance (``None``
        once an unsampled, non-slow trace has been dropped).

        On the authoritative recorder this is where tail-based retention
        resolves: latency histograms are observed, slow unsampled traces
        are promoted, and the rest are dropped after their delivery has
        been counted.
        """
        mid = match_id(substitution)
        record = self._records.get(mid)
        if record is None:
            if mid in self._dropped:
                # Already delivered once and dropped by the sampler —
                # this is a re-delivery, which exactly-once forbids.
                self._dropped[mid] += 1
                self._counts["duplicates"] += 1
                self._ctr_duplicates.inc()
                return None
            record = self._new_record(mid, substitution,
                                      pattern_id=pattern_id,
                                      partition=partition)
            if not record.path:
                record.path = tuple(v.name for v, _ in substitution)
        if pattern_id is not None and record.pattern_id is None:
            record.pattern_id = pattern_id
        if partition is not None and record.partition is None:
            record.partition = partition
        now = time.time()
        if not self.authoritative:
            record.stages.setdefault("report", now)
            return record if record.kept is not None else None
        record.stages.setdefault("deliver", now)
        if record.delivered_by is None:
            record.delivered_by = by if by is not None else self.site
        record.delivered += 1
        if record.delivered > 1:
            self._counts["duplicates"] += 1
            self._ctr_duplicates.inc()
        latency = record.latency()
        if latency is not None:
            self._hist_e2e.observe(latency)
            accept = record.stages.get("accept")
            if accept is not None:
                start = record.stages.get("ingest")
                if start is not None:
                    self._hist_match.observe(max(accept - start, 0.0))
                self._hist_deliver.observe(max(now - accept, 0.0))
            if record.kept is None and latency > self.config.slow_seconds:
                record.kept = "slow"
                self._counts["slow"] += 1
                self._ctr_slow.inc()
        if record.kept is None:
            self._records.pop(mid, None)
            self._dropped[mid] = 1
            while len(self._dropped) > self.config.max_traces * 4:
                self._dropped.popitem(last=False)
            self._counts["dropped"] += 1
            self._ctr_dropped.inc()
            return None
        return record

    def note_quarantined(self, event, shard=None, seq=None,
                         reason=None) -> Provenance:
        """Force-keep the trace of a quarantined event (tail-based
        sampling never drops poison)."""
        trace_id = trace_id_for(event)
        ctx = self._contexts.get(trace_id)
        mid = f"quarantine:{trace_id}"
        record = self._records.get(mid)
        if record is None:
            stages = {"quarantine": time.time()}
            if ctx is not None:
                stages["ingest"] = ctx.ingest_ts
            record = Provenance(
                mid, event_ids=(event.eid if event.eid is not None
                                else trace_id,),
                trace_ids=(trace_id,), kept="quarantined", stages=stages,
                delivered_by=(f"shard:{shard}" if shard is not None
                              else self.site),
                partition=seq, pattern_id=reason)
            self._records[mid] = record
            self._counts["quarantined"] += 1
            self._ctr_quarantined.inc()
        return record

    def note_fold(self, event, folded=None) -> None:
        """Account an aggregate fold: group-level provenance (aggregates
        materialise no matches, so lineage records the contributing
        event stream and fold count instead)."""
        mid = f"agg:{self.site}"
        record = self._records.get(mid)
        if record is None:
            record = Provenance(mid, kept="sampled",
                                stages={"accept": time.time()},
                                delivered_by=self.site)
            self._records[mid] = record
            self._counts["records"] += 1
            self._ctr_records.inc()
        trace_id = trace_id_for(event)
        if len(record.trace_ids) < 64:
            record.trace_ids += (trace_id,)
            record.event_ids += (event.eid if event.eid is not None
                                 else trace_id,)
        if folded is not None:
            record.delivered = folded
        ctx = self._contexts.get(trace_id)
        if ctx is not None:
            start = record.stages.get("ingest")
            record.stages["ingest"] = ctx.ingest_ts if start is None \
                else min(start, ctx.ingest_ts)

    def aggregate_provenance(self, folded=None) -> Optional[Provenance]:
        """The group-level aggregate record, if any folds were seen.

        ``folded`` syncs the final fold count: end-of-stream flushes
        fold after the last :meth:`note_fold` call, so the stored count
        can lag by the matches accepted at window close.
        """
        for mid, record in self._records.items():
            if mid.startswith("agg:"):
                if folded is not None:
                    record.delivered = folded
                return record
        return None

    # ------------------------------------------------------------------
    # Lookup / reconciliation
    # ------------------------------------------------------------------
    def provenance_for(self, substitution) -> Optional[Provenance]:
        return self._records.get(match_id(substitution))

    def get(self, mid: str) -> Optional[Provenance]:
        return self._records.get(mid)

    def note_push(self, mid: str, subscriber: str) -> None:
        """Stamp a push-delivery hop naming the subscriber.

        The subscription hub calls this when a retained match leaves
        through a push channel; the hop lands in the record's stage map
        as ``push:<subscriber>`` (first delivery wins), so ``repro
        trace`` and ``/debug/lineage`` show *which* subscriber a match
        reached and when.  A no-op for records the sampler dropped.
        """
        record = self._records.get(mid)
        if record is not None:
            record.stages.setdefault(f"push:{subscriber}", time.time())

    def records(self) -> List[Provenance]:
        return list(self._records.values())

    def reconcile(self, matches) -> dict:
        """Check lineage against a delivered match set.

        ``matches`` is an iterable of substitutions (or objects with a
        ``substitution`` attribute, e.g. :class:`~repro.agg.result.Match`).
        Exact reconciliation means: every delivered match has exactly one
        provenance record, delivered exactly once, whose event ids agree
        with the match's events — and no match-shaped record points at a
        match that was never delivered.
        """
        expected: Dict[str, int] = {}
        by_mid = {}
        for match in matches:
            substitution = getattr(match, "substitution", match)
            mid = match_id(substitution)
            expected[mid] = expected.get(mid, 0) + 1
            by_mid[mid] = substitution
        missing, orphans, duplicates, mismatched = [], [], [], []
        for mid, record in self._records.items():
            if ":" in mid:  # quarantine/agg pseudo-records
                continue
            want = expected.get(mid)
            if want is None:
                if record.delivered:
                    orphans.append(mid)
                continue
            if record.delivered != want:
                duplicates.append(mid)
            substitution = by_mid[mid]
            events = substitution.events()
            ids = tuple(e.eid if e.eid is not None else trace_id_for(e)
                        for e in events)
            if record.event_ids != ids:
                mismatched.append(mid)
        for mid in expected:
            if mid not in self._records:
                missing.append(mid)
        return {"matches": sum(expected.values()),
                "records": len([m for m in self._records if ":" not in m]),
                "missing": missing, "orphans": orphans,
                "duplicates": duplicates, "mismatched": mismatched,
                "ok": not (missing or orphans or duplicates or mismatched)}

    # ------------------------------------------------------------------
    # Cross-process plumbing
    # ------------------------------------------------------------------
    def export_record(self) -> dict:
        """The wire form absorbed by :meth:`absorb` — rides worker
        observability snapshots under the ``repro_lineage`` key.

        Non-authoritative recorders ship their delivery counts zeroed:
        only the parent's own :meth:`deliver` stamps count, so a worker
        report can never double a delivery.
        """
        records = []
        for record in self._records.values():
            data = record.to_dict()
            if not self.authoritative:
                data["delivered"] = 0
                data.pop("delivered_by", None)
            records.append(data)
        return {"type": "lineage", "site": self.site,
                "contexts": [ctx.to_dict()
                             for ctx in self._contexts.values()],
                "records": records,
                "counts": dict(self._counts)}

    def absorb(self, record: dict) -> None:
        """Fold an exported worker record into this recorder."""
        for ctx_data in record.get("contexts", ()):
            try:
                ctx = TraceContext(ctx_data["trace_id"],
                                   ctx_data["ingest_ts"],
                                   [tuple(h) for h in
                                    ctx_data.get("hops", ())])
            except (KeyError, TypeError):
                continue
            existing = self._contexts.get(ctx.trace_id)
            if existing is None:
                self._remember_context(ctx)
            else:
                existing.ingest_ts = min(existing.ingest_ts, ctx.ingest_ts)
                seen = set(existing.hops)
                existing.hops.extend(h for h in ctx.hops if h not in seen)
                existing.hops.sort(key=lambda h: h[2])
        for data in record.get("records", ()):
            try:
                incoming = Provenance.from_dict(data)
            except KeyError:
                continue
            if incoming.match_id in self._dropped:
                continue
            mine = self._records.get(incoming.match_id)
            if mine is None:
                self._records[incoming.match_id] = incoming
                while len(self._records) > self.config.max_traces:
                    self._records.popitem(last=False)
            else:
                mine.merge(incoming)
        for name, value in record.get("counts", {}).items():
            if name in self._counts:
                self._counts[name] += value

    # ------------------------------------------------------------------
    # Summaries / rendering
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Compact state for ``/varz`` and ``/debug/lineage``."""
        kept = {}
        for record in self._records.values():
            kept[record.kept] = kept.get(record.kept, 0) + 1
        return {"site": self.site,
                "sample_rate": self.config.sample_rate,
                "slow_seconds": self.config.slow_seconds,
                "contexts": len(self._contexts),
                "records": len(self._records),
                "kept": {str(k): v for k, v in sorted(
                    kept.items(), key=lambda kv: str(kv[0]))},
                **self._counts}

    def report(self) -> "LineageReport":
        return LineageReport(self.records(), summary=self.summary())


class LineageReport:
    """Renderable view over a set of provenance records.

    Mirrors :class:`~repro.explain.report.ExplainReport`: ``render``
    dispatches on the same ``text`` / ``json`` / ``dot`` format names so
    the ``repro trace`` CLI behaves like ``repro explain``.
    """

    def __init__(self, records: List[Provenance],
                 summary: Optional[dict] = None):
        self.records = list(records)
        self.summary = summary or {}

    def render(self, format: str = "text") -> str:
        if format == "text":
            return self.to_text()
        if format == "json":
            return self.to_json()
        if format == "dot":
            return self.to_dot()
        raise ValueError(f"unknown lineage format {format!r}; "
                         f"expected text, json or dot")

    def to_text(self) -> str:
        lines = [f"LINEAGE ({len(self.records)} record(s))"]
        for record in self.records:
            latency = record.latency()
            lines.append(f"match {record.match_id}"
                         + (f" [{record.pattern_id}]"
                            if record.pattern_id else "")
                         + (f" kept={record.kept}" if record.kept else ""))
            lines.append("  events: " + (", ".join(record.event_ids)
                                         or "(none)"))
            lines.append("  path:   " + (" -> ".join(record.path)
                                         or "(none)"))
            if record.delivered_by is not None:
                lines.append(f"  delivered: {record.delivered}x "
                             f"by {record.delivered_by}")
            if latency is not None:
                lines.append(f"  latency: {latency * 1e3:.3f} ms end-to-end")
            for stage, seconds in record.stage_breakdown():
                lines.append(f"    {stage:<10} +{seconds * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {"summary": self.summary,
             "records": [record.to_dict() for record in self.records]},
            indent=2, sort_keys=True, default=str)

    def to_dot(self) -> str:
        lines = ["digraph LINEAGE {", "  rankdir=LR;",
                 '  node [fontname="monospace"];']
        for record in self.records:
            mid = record.match_id
            lines.append(f'  "m:{mid}" [shape=doubleoctagon, '
                         f'label="match {mid}"];')
            for eid, label in zip(record.event_ids, record.path):
                lines.append(f'  "e:{eid}" [shape=box, label="{eid}"];')
                lines.append(f'  "e:{eid}" -> "m:{mid}" '
                             f'[label="{label}"];')
            for eid in record.event_ids[len(record.path):]:
                lines.append(f'  "e:{eid}" [shape=box, label="{eid}"];')
                lines.append(f'  "e:{eid}" -> "m:{mid}";')
            if record.delivered_by:
                lines.append(f'  "m:{mid}" -> "d:{record.delivered_by}" '
                             f'[style=dashed];')
                lines.append(f'  "d:{record.delivered_by}" '
                             f'[shape=ellipse, '
                             f'label="{record.delivered_by}"];')
        lines.append("}")
        return "\n".join(lines)
