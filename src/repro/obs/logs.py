"""The ``repro.*`` logging hierarchy.

Library modules obtain loggers with :func:`get_logger` (a thin wrapper
over :func:`logging.getLogger` that anchors names under ``repro``) and
never configure handlers themselves — per library convention, the root
``repro`` logger carries a :class:`logging.NullHandler` so embedding
applications stay silent unless they opt in.

Applications (the CLI, benchmarks, CI) opt in with
:func:`configure_logging`, mapped from ``--verbose``/``--quiet`` flags:

========= ==========================
verbosity effective level
========= ==========================
``-1``    ``ERROR``  (``--quiet``)
``0``     ``WARNING`` (default)
``1``     ``INFO``   (``-v``)
``2+``    ``DEBUG``  (``-vv``)
========= ==========================
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging", "verbosity_level"]

_ROOT = "repro"
_FORMAT = "%(levelname)s %(name)s: %(message)s"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts dotted module names (``__name__`` works whether or not it
    already starts with ``repro``) or bare suffixes like ``"bench"``.
    """
    if not name or name == _ROOT:
        return logging.getLogger(_ROOT)
    if name.startswith(_ROOT + ".") :
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a :mod:`logging` level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, stream=None,
                      fmt: Optional[str] = None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Re-invocation replaces the previously attached handler (so tests and
    long-lived sessions can reconfigure), leaving any NullHandler and
    application handlers alone.  Returns the root ``repro`` logger.
    """
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    handler._repro_configured = True
    root.addHandler(handler)
    root.setLevel(verbosity_level(verbosity))
    return root
