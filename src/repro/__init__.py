"""repro — sequenced event set (SES) pattern matching.

A complete reproduction of *Sequenced Event Set Pattern Matching*
(Cadonna, Gamper, Böhlen; EDBT 2011): the SES pattern model, the
automaton-based evaluation algorithm with event filtering, the brute-force
baseline, the declarative Definition-2 oracle, executable complexity
bounds, a PERMUTE query language, an embedded event store, streaming
execution, parallel partitioned execution over process pools, and the
full benchmark harness for the paper's experiments.

Quickstart::

    import repro
    from repro import Event

    events = [
        Event(ts=1, eid="a1", kind="A"),
        Event(ts=2, eid="b1", kind="B"),
        Event(ts=3, eid="c1", kind="C"),
    ]
    result = repro.query(
        "PATTERN PERMUTE(a, b) THEN c "
        "WHERE a.kind = 'A' AND b.kind = 'B' AND c.kind = 'C' "
        "WITHIN 10", events)
    for match in result:
        print(match.events())

Aggregation queries fold matches incrementally — no match is ever
materialised::

    series = repro.query(
        "SELECT count(*) AS n, avg(c.T) "
        "FROM PATTERN PERMUTE(a, b) THEN c "
        "WHERE a.kind = 'A' AND b.kind = 'B' AND c.kind = 'C' "
        "WITHIN 10", events)
    print(series["n"])

:func:`query` returns the typed :data:`~repro.agg.result.Result` union
(:class:`MatchSet` | :class:`AggregateSeries`); dispatch on
``result.kind``.  For repeated runs compile once:
``repro.compile(pattern).match(relation)`` (process-global plan cache).
The one-shot :func:`match` and the :class:`Matcher` class remain as
deprecated thin wrappers over the same plan cache.
"""

from .agg import AggregateSeries, AggregateSpec, Match, MatchSet
from .api import query

from .core.conditions import Attr, Condition, Const, attr, const
from .core.events import Attribute, Event, EventSchema, SchemaError
from .core.matcher import Matcher, match
from .core.pattern import PatternError, SESPattern
from .core.relation import EventRelation
from .core.substitution import Substitution
from .core.variables import Variable, group, var

from .automaton.automaton import SESAutomaton
from .automaton.builder import build_automaton
from .automaton.executor import MatchResult, SESExecutor, execute
from .automaton.filtering import EventFilter

from .explain import (ExplainReport, StatsStore, clear_stats_store, explain,
                      explain_analyze, stats_store)
from .lang import compile_query, parse_query
from .obs import (FlightRecorder, LineageRecorder, Observability, ObsServer,
                  Provenance, TraceConfig)
from .parallel import (ParallelPartitionedMatcher, ShardedStreamMatcher,
                       WorkerCrashed)
from .plan import (PatternPlan, PlanCache, clear_plan_cache, compile,
                   plan_cache, set_plan_cache_size)
from .registry import PatternRegistry, TenantQuota
from .resilience import (DeadLetterQueue, FaultPlan, GuardConfig,
                         ResourceExhausted, RestartPolicy, Supervisor)
from .stream import ContinuousMatcher, MultiPatternMatcher

__version__ = "1.0.0"

__all__ = [
    "AggregateSeries",
    "AggregateSpec",
    "Attribute",
    "Attr",
    "Condition",
    "Const",
    "ContinuousMatcher",
    "DeadLetterQueue",
    "Event",
    "EventFilter",
    "EventRelation",
    "EventSchema",
    "ExplainReport",
    "FaultPlan",
    "FlightRecorder",
    "GuardConfig",
    "LineageRecorder",
    "Match",
    "MatchResult",
    "MatchSet",
    "Matcher",
    "MultiPatternMatcher",
    "Observability",
    "ObsServer",
    "ParallelPartitionedMatcher",
    "PatternError",
    "PatternPlan",
    "PatternRegistry",
    "PlanCache",
    "Provenance",
    "ResourceExhausted",
    "RestartPolicy",
    "SESAutomaton",
    "SESExecutor",
    "SESPattern",
    "SchemaError",
    "ShardedStreamMatcher",
    "StatsStore",
    "Substitution",
    "Supervisor",
    "TenantQuota",
    "TraceConfig",
    "Variable",
    "WorkerCrashed",
    "attr",
    "build_automaton",
    "clear_plan_cache",
    "clear_stats_store",
    "compile",
    "compile_query",
    "const",
    "execute",
    "explain",
    "explain_analyze",
    "group",
    "match",
    "parse_query",
    "plan_cache",
    "query",
    "set_plan_cache_size",
    "stats_store",
    "var",
    "__version__",
]
