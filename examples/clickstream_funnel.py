"""Click-stream funnel analysis — purchase-intent detection.

Click-stream analysis is one of the application domains the paper's
introduction motivates.  A web shop wants to find sessions where the
user performed the full *consideration set* — add-to-cart, read reviews,
compare alternatives — in **any order** (browsing order varies wildly
between users), followed by a checkout, all within 30 minutes.  The
example also shows the pattern linter and the Ω-population sparkline.

Run with::

    python examples/clickstream_funnel.py
"""

from repro import Matcher
from repro.automaton import sparkline
from repro.core.diagnostics import diagnose
from repro.data.clickstream import generate_clickstream, purchase_intent_pattern


def main() -> None:
    clicks = generate_clickstream(users=25, sessions_per_user=4,
                                  intent_fraction=0.35, seed=3)
    pattern = purchase_intent_pattern(tau=1800)
    print(f"clickstream: {len(clicks)} events from "
          f"{len(clicks.partition_by('user'))} users")

    findings = diagnose(pattern)
    print("linter:", "clean" if not findings
          else "; ".join(str(f) for f in findings))

    matcher = Matcher(pattern)
    executor = matcher.executor()
    executor.record_history = True
    result = executor.run(clicks)

    converting_users = sorted({m.events()[0]["user"] for m in result})
    print(f"\n{len(result)} purchase-intent funnels, "
          f"{len(converting_users)} distinct users: {converting_users}")
    for substitution in result.matches[:5]:
        user = substitution.events()[0]["user"]
        order = " -> ".join(e["action"] for e in substitution.events())
        print(f"  user {user:>2}: {order} ({substitution.span()} s)")
    if len(result) > 5:
        print(f"  ... and {len(result) - 5} more")

    stats = result.stats
    print(f"\nfiltered {stats.events_filtered}/{stats.events_read} events, "
          f"peak {stats.max_simultaneous_instances} instances")
    print("instance population over time:")
    print(f"  {sparkline(stats.omega_history, width=66)}")


if __name__ == "__main__":
    main()
