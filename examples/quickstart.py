"""Quickstart: define events, a SES pattern, and find matches.

Run with::

    python examples/quickstart.py

A sequenced event set (SES) pattern matches a *sequence of sets* of
events: events matching the same set may arrive in any order, events
matching different sets must be strictly ordered, and everything must
happen within a time window.
"""

from repro import Event, EventRelation, SESPattern, match


def main() -> None:
    # A tiny login-audit trail: timestamps are minutes since midnight.
    relation = EventRelation([
        Event(ts=0, eid="boot", kind="boot", host="web-1"),
        Event(ts=3, eid="cfg", kind="config", host="web-1"),
        Event(ts=5, eid="svc", kind="service", host="web-1"),
        Event(ts=9, eid="ready", kind="ready", host="web-1"),
        Event(ts=14, eid="cfg2", kind="config", host="web-2"),
        Event(ts=15, eid="svc2", kind="service", host="web-2"),
        Event(ts=16, eid="boot2", kind="boot", host="web-2"),
        Event(ts=21, eid="ready2", kind="ready", host="web-2"),
    ])

    # Startup requires boot + config + service in ANY order, then ready —
    # all on the same host, within 15 minutes.  Note host web-2 performs
    # the first three steps in a different order than web-1; a PERMUTE
    # (event set) pattern matches both.
    pattern = SESPattern(
        sets=[["b", "c", "s"], ["r"]],
        conditions=[
            "b.kind = 'boot'", "c.kind = 'config'", "s.kind = 'service'",
            "r.kind = 'ready'",
            "b.host = c.host", "b.host = s.host", "b.host = r.host",
        ],
        tau=15,
    )

    result = match(pattern, relation)
    print(f"found {len(result)} startup sequences")
    for substitution in result:
        host = substitution.events()[0]["host"]
        steps = ", ".join(f"{var!r}={event.eid}@{event.ts}"
                          for var, event in substitution)
        print(f"  host {host}: {steps}")

    stats = result.stats
    print(f"(processed {stats.events_processed} events with at most "
          f"{stats.max_simultaneous_instances} automaton instances)")


if __name__ == "__main__":
    main()
