"""Trade surveillance: detecting accumulate-then-dump behaviour.

Financial services are one of the paper's motivating domains.  A
surveillance desk wants to flag accounts that place a *basket* of buy
orders across several venues — in any order, because routing scrambles
them — followed by a burst of sells, all within a trading session.  The
order-insensitivity inside each phase is exactly what the PERMUTE /
event-set construct expresses and what sequential-only engines cannot.

Run with::

    python examples/stock_surveillance.py
"""

import random

from repro import Event, EventRelation, SESPattern, match

VENUES = ("NYSE", "ARCA", "BATS")


def synthesize_trades(seed: int = 42) -> EventRelation:
    """A day of order flow (timestamps in seconds since open)."""
    rng = random.Random(seed)
    events = []
    counter = 0

    def order(ts, account, side, venue, qty):
        nonlocal counter
        counter += 1
        events.append(Event(ts=ts, eid=f"o{counter}", account=account,
                            side=side, venue=venue, qty=qty))

    # Innocent background flow: small uncoordinated orders.
    for _ in range(60):
        order(rng.randint(0, 23_000), f"acct-{rng.randint(10, 30)}",
              rng.choice(["buy", "sell"]), rng.choice(VENUES),
              rng.randint(10, 200))

    # Suspicious account 7: buys on all three venues (order scrambled by
    # smart routing), then repeated sells shortly after.
    start = 9_000
    for venue, offset in zip(("BATS", "NYSE", "ARCA"), (0, 37, 61)):
        order(start + offset, "acct-7", "buy", venue, 5_000)
    for i, offset in enumerate((400, 500, 650)):
        order(start + offset, "acct-7", "sell", "NYSE", 4_000 + i)

    return EventRelation(sorted(events, key=lambda e: e.ts))


def surveillance_pattern() -> SESPattern:
    """Large buys on each venue (any order), then 1+ large sells, 30 min."""
    return SESPattern(
        sets=[["n", "a", "t"], ["s+"]],
        conditions=[
            "n.side = 'buy'", "n.venue = 'NYSE'", "n.qty >= 1000",
            "a.side = 'buy'", "a.venue = 'ARCA'", "a.qty >= 1000",
            "t.side = 'buy'", "t.venue = 'BATS'", "t.qty >= 1000",
            "s.side = 'sell'", "s.qty >= 1000",
            "n.account = a.account", "n.account = t.account",
            "n.account = s.account",
        ],
        tau=1_800,
    )


def main() -> None:
    relation = synthesize_trades()
    pattern = surveillance_pattern()
    result = match(pattern, relation)

    print(f"scanned {len(relation)} orders, "
          f"filtered {result.stats.events_filtered} as irrelevant")
    if not result.matches:
        print("no accumulate-and-dump behaviour found")
        return
    for substitution in result:
        account = substitution.events()[0]["account"]
        buys = [e for _, e in substitution if e["side"] == "buy"]
        sells = [e for _, e in substitution if e["side"] == "sell"]
        print(f"ALERT {account}: {len(buys)} venue buys "
              f"({', '.join(e['venue'] for e in sorted(buys, key=lambda x: x.ts))}) "
              f"then {len(sells)} sells within "
              f"{substitution.span()} s")


if __name__ == "__main__":
    main()
