"""Cost-informed planning: let the library choose how to run a query.

Different SES patterns want different execution configurations — the
event filter pays off when most events are irrelevant, state indexing
when it is not, and partitioned execution when the pattern equi-joins
all variables on one attribute.  ``repro.planner`` measures the data,
applies the paper's complexity analysis (Theorems 1–3), and explains its
choice like a database EXPLAIN.

Run with::

    python examples/query_planning.py
"""

from repro.data import base_dataset, pattern_p3, query_q1
from repro.planner import plan_query


def main() -> None:
    relation = base_dataset(patients=10, cycles=3)
    print(f"data: {len(relation)} events, "
          f"W = {relation.window_size(264)} at tau = 264\n")

    # A cheap, mutually exclusive pattern: Query Q1.
    plan = plan_query(query_q1(), relation)
    print(plan.explain())
    result = plan.execute(relation)
    print(f"=> {len(result)} matches, "
          f"peak {result.stats.max_simultaneous_instances} instances\n")

    # A heavy pattern (group variable, non-exclusive conditions): the
    # planner keeps Algorithm 1 semantics by default...
    plan = plan_query(pattern_p3(), relation)
    print(plan.explain())
    result = plan.execute(relation)
    print(f"=> {len(result)} matches, "
          f"peak {result.stats.max_simultaneous_instances} instances\n")

    # ...and partitions when allowed to relax to superset recall.
    plan = plan_query(pattern_p3(), relation, exact=False)
    print(plan.explain())
    result = plan.execute(relation)
    print(f"=> {len(result)} matches, "
          f"peak {result.stats.max_simultaneous_instances} instances")


if __name__ == "__main__":
    main()
