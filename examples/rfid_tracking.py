"""RFID-based shipment tracking, another of the paper's motivating domains.

A pallet leaving a warehouse must be read by three dock sensors — weigh
bridge, customs scanner, and gate antenna.  Physical layout makes the
read order unpredictable (that is the PERMUTE part), but every complete
dock passage must be followed by a truck-departure read, all within 20
minutes.  Shipments whose sensor set is incomplete (a missed read) must
not match.

Run with::

    python examples/rfid_tracking.py
"""

from repro import Event, EventRelation
from repro.lang import parse_pattern

# Join-writing practice for skip-till-next-match engines: connect the
# equality constraints PAIRWISE (w-c, w-g, c-g), not just in a star around
# one variable.  With only star joins, an instance that bound ``g`` first
# has no checkable constraint when a *different* pallet's customs read
# arrives; greedy consumption then binds it and the run dead-ends, losing
# the match (see repro.automaton.optimizations for the same effect).
QUERY = """
    PATTERN PERMUTE(w, c, g) THEN t
    WHERE w.sensor = 'weigh'   AND c.sensor = 'customs'
      AND g.sensor = 'gate'    AND t.sensor = 'truck'
      AND w.tag = c.tag AND w.tag = g.tag AND c.tag = g.tag
      AND w.tag = t.tag
    WITHIN 20
"""


def dock_reads() -> EventRelation:
    """Sensor reads for three pallets (timestamps in minutes)."""
    rows = [
        # pallet A: complete passage, order weigh-customs-gate.
        (1, "weigh", "pallet-A"), (4, "customs", "pallet-A"),
        (6, "gate", "pallet-A"), (12, "truck", "pallet-A"),
        # pallet B: complete passage, scrambled order gate-weigh-customs.
        (3, "gate", "pallet-B"), (7, "weigh", "pallet-B"),
        (9, "customs", "pallet-B"), (15, "truck", "pallet-B"),
        # pallet C: customs read missing -> must NOT match.
        (5, "weigh", "pallet-C"), (8, "gate", "pallet-C"),
        (14, "truck", "pallet-C"),
        # pallet D: complete but truck read too late (outside 20 minutes).
        (20, "customs", "pallet-D"), (21, "weigh", "pallet-D"),
        (23, "gate", "pallet-D"), (55, "truck", "pallet-D"),
    ]
    events = [Event(ts=ts, eid=f"{tag}:{sensor}", sensor=sensor, tag=tag)
              for ts, sensor, tag in rows]
    return EventRelation(sorted(events, key=lambda e: e.ts))


def main() -> None:
    pattern = parse_pattern(QUERY)
    relation = dock_reads()
    from repro import match

    result = match(pattern, relation)
    shipped = {m.events()[0]["tag"] for m in result}
    print(f"{len(relation)} reads, {len(result)} complete dock passages")
    for substitution in result:
        tag = substitution.events()[0]["tag"]
        order = " -> ".join(e["sensor"] for e in substitution.events())
        print(f"  {tag}: {order} ({substitution.span()} min)")

    for expected in ("pallet-A", "pallet-B"):
        assert expected in shipped, f"{expected} should have matched"
    assert "pallet-C" not in shipped, "incomplete passage must not match"
    assert "pallet-D" not in shipped, "late departure must not match"
    print("pallet-C (missed read) and pallet-D (too slow) correctly rejected")


if __name__ == "__main__":
    main()
