"""Continuous SES matching over a live event stream.

The SES automaton consumes one event at a time, so it runs unchanged
over unbounded streams (the DejaVu/SASE setting of the related work).
This example wires a :class:`~repro.stream.ContinuousMatcher` to a
synthetic monitoring stream and reacts to matches via callbacks as they
are emitted — note that a match involving a group variable can only be
emitted once its window expires, because more events might still belong
to it (Algorithm 1's MAXIMAL semantics).

Run with::

    python examples/streaming_monitor.py
"""

from repro import SESPattern
from repro.stream import ContinuousMatcher, synthetic


def incident_pattern() -> SESPattern:
    """1+ error bursts and a failover (any order), then a recovery, 2 h."""
    return SESPattern(
        sets=[["e+", "f"], ["r"]],
        conditions=[
            "e.kind = 'error'",
            "f.kind = 'failover'",
            "r.kind = 'recovered'",
        ],
        tau=120,
    )


def main() -> None:
    matcher = ContinuousMatcher(incident_pattern())

    @matcher.on_match
    def page_oncall(substitution):
        events = substitution.events()
        errors = sum(1 for _, e in substitution if e["kind"] == "error")
        print(f"  INCIDENT window T={events[0].ts}..{events[-1].ts}: "
              f"{errors} error burst(s) + failover, recovered at "
              f"T={events[-1].ts}")

    # A synthetic ops stream: mostly heartbeats, occasionally trouble.
    stream = synthetic(
        kinds=("heartbeat", "heartbeat", "heartbeat", "heartbeat",
               "error", "failover", "recovered"),
        rate=0.2,
        count=400,
        seed=11,
    )

    fed = 0
    for event in stream:
        matcher.push(event)
        fed += 1
    matcher.close()

    stats = matcher.stats
    print(f"\nstreamed {fed} events "
          f"({stats.events_filtered} dropped by the pre-filter), "
          f"reported {len(matcher.matches)} incidents, "
          f"peak instance population {stats.max_simultaneous_instances}")


if __name__ == "__main__":
    main()
