"""The paper's running example, end to end.

Loads the Event relation of Figure 1 into the embedded event store,
expresses Query Q1 in the PERMUTE query language, shows the constructed
SES automaton (Figure 5), and prints the matching substitutions — which
are exactly the results the paper reports in Example 1.

Run with::

    python examples/chemotherapy_analysis.py
"""

from repro import match
from repro.data import CHEMO_SCHEMA, figure1_relation
from repro.automaton.builder import build_automaton
from repro.lang import parse_pattern
from repro.storage import Database

QUERY_Q1 = """
    -- one Ciclofosfamide, one or more Prednisone, one Doxorubicina,
    -- in any order, then a blood count; same patient; within 11 days
    PATTERN PERMUTE(c, p+, d) THEN b
    WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
      AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
    WITHIN 11 DAYS
"""


def main() -> None:
    # 1. Store the Figure 1 events like the paper stores them in Oracle.
    database = Database("hospital")
    table = database.create_table("Event", CHEMO_SCHEMA, indexes=["ID", "L"])
    table.insert_many(figure1_relation())
    print(f"loaded {len(table)} chemotherapy events into {table!r}")

    # 2. Compile Query Q1 from the PERMUTE query language.
    pattern = parse_pattern(QUERY_Q1)
    print(f"\ncompiled pattern: {pattern!r}")

    # 3. Inspect the SES automaton the query translates to (Figure 5).
    automaton = build_automaton(pattern)
    print(f"\n{automaton.describe()}")

    # 4. Evaluate and report (Example 1's intended results).
    result = match(pattern, table.to_relation())
    print(f"\n{len(result)} matching substitutions:")
    for substitution in result:
        patient = substitution.events()[0]["ID"]
        bindings = ", ".join(f"{var!r}/{event.eid}"
                             for var, event in substitution)
        print(f"  patient {patient}: {{{bindings}}}")

    # 5. Show what the physicians asked: medications vs blood count times.
    for substitution in result:
        events = substitution.events()
        span_hours = events[-1].ts - events[0].ts
        print(f"  -> patient {events[0]['ID']}: therapy block spans "
              f"{span_hours} h (limit 264 h)")


if __name__ == "__main__":
    main()
