"""Experiment 2 (Figure 12): instance growth with the window size.

Reproduces the paper's second experiment, validating Theorems 2 and 3:
on the duplicated data sets D1..D5 (window size W growing linearly),

* P4 = ``(<{c,d,p},{b}>, Θ2, 264)`` — no group variable — shows a
  *linear* trend of the maximal simultaneous instance count in W
  (Theorem 2: the per-start bound |V1|! is a constant, so only the
  number of starts per window grows);
* P3 = ``(<{c,d,p+},{b}>, Θ2, 264)`` — one group variable — shows a
  *polynomial* (superlinear) trend (Theorem 3).
"""

import pytest

from repro.bench import print_experiment2, run_experiment2
from repro.complexity import pattern_instance_bound
from repro.core.matcher import Matcher
from repro.data import pattern_p3, pattern_p4


@pytest.mark.parametrize("factor", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("which", ["P3", "P4"])
def test_scaling_run(benchmark, exp23_datasets, factor, which):
    """Time one (pattern, dataset) cell of Figure 12."""
    if factor not in exp23_datasets:
        pytest.skip("beyond profile's duplication budget")
    relation = exp23_datasets[factor]
    pattern = pattern_p3() if which == "P3" else pattern_p4()
    matcher = Matcher(pattern, selection="accepted")
    result = benchmark.pedantic(matcher.run, args=(relation,),
                                rounds=1, iterations=1)
    benchmark.extra_info["window"] = relation.window_size(264)
    benchmark.extra_info["max_instances"] = (
        result.stats.max_simultaneous_instances)


def test_figure12(exp23_base, profile, capsys):
    """Run the sweep, print Figure 12's series, assert the growth classes."""
    rows = run_experiment2(exp23_base, factors=profile.factors)
    with capsys.disabled():
        print_experiment2(rows)
    windows = [r["window"] for r in rows]
    p3 = [r["p3_instances"] for r in rows]
    p4 = [r["p4_instances"] for r in rows]

    assert windows == sorted(windows)
    assert p3 == sorted(p3), "P3 instances must grow with W"
    assert p4 == sorted(p4), "P4 instances must grow with W"

    # P4 (Theorem 2): linear — the per-window-event increment stays flat.
    # Compare the growth of the last step to a linear extrapolation of the
    # first step; allow generous tolerance for workload noise.
    w_ratio = windows[-1] / windows[0]
    p4_ratio = p4[-1] / p4[0]
    assert p4_ratio <= 1.6 * w_ratio, "P4 should scale (sub-)linearly in W"

    # P3 (Theorem 3): superlinear — grows strictly faster than P4.
    p3_ratio = p3[-1] / p3[0]
    assert p3_ratio > 1.5 * p4_ratio, "P3 must grow faster than P4"

    # Theorem soundness: measured counts never exceed the theoretical bound.
    for row, window in zip(rows, windows):
        assert row["p3_instances"] <= pattern_instance_bound(pattern_p3(), window)
        assert row["p4_instances"] <= pattern_instance_bound(pattern_p4(), window)
