"""Online aggregation: incremental fold vs enumerate-then-fold.

The asymptotic claim of ``repro.agg``: on combinatorially exploding
patterns (``PERMUTE(a+, b+)`` with constant conditions — ``2^k - 2``
accepted buffers from ``k`` admissible events), an aggregation query
folded inside the executor over coalesced instance groups beats
enumerating the match set and folding afterwards, superlinearly in
``k``.  The benchmark pair carries the claim ``python -m repro.bench``
also tracks as ``bench_agg_*``; value equality against the reference is
asserted on every run, and the incremental path additionally pins that
no match set is ever materialised (empty result, bounded group
population).
"""

import pytest

from repro.agg.engine import finalize_snapshot, fold_reference
from repro.bench.aggregation import (aggregation_pattern,
                                     aggregation_relation, aggregation_spec)
from repro.plan.cache import compile as compile_plan

#: Admissible events in the blow-up relation: 2^14 - 2 = 16382 matches.
K = 14


@pytest.fixture(scope="module")
def relation():
    return aggregation_relation(K)


@pytest.fixture(scope="module")
def spec():
    return aggregation_spec()


@pytest.fixture(scope="module")
def reference_values(relation, spec):
    plan = compile_plan(aggregation_pattern())
    result = plan.match(relation, selection="accepted")
    return finalize_snapshot(spec, fold_reference(spec, list(result)))


def _run_enumerate(relation, spec):
    plan = compile_plan(aggregation_pattern())
    result = plan.match(relation, selection="accepted")
    return finalize_snapshot(spec, fold_reference(spec, list(result)))


def _run_incremental(relation, spec):
    plan = compile_plan(aggregation_pattern(), aggregate=spec)
    return plan.match(relation)


def test_enumerate_then_fold(benchmark, relation, spec, reference_values):
    """The baseline: materialise 2^k - 2 buffers, then fold them."""
    values = benchmark(_run_enumerate, relation, spec)
    assert values == reference_values


def test_incremental_fold(benchmark, relation, spec, reference_values):
    """The contender: fold inside the executor, materialise nothing."""
    result = benchmark(_run_incremental, relation, spec)
    series = result.aggregates
    assert len(result) == 0 and result.accepted == []
    assert series.matches_folded == reference_values["n"]
    for label, value in series:
        expected = reference_values[label]
        if isinstance(value, float):
            assert value == pytest.approx(expected), label
        else:
            assert value == expected, label
