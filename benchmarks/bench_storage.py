"""Ablation X4: embedded event store throughput.

Measures insert and query rates of the storage substrate to confirm the
store is never the bottleneck in the end-to-end experiments (the paper
reads its events from Oracle once per run; our store plays that role).
"""

import pytest

from repro.data import CHEMO_SCHEMA, base_dataset
from repro.storage import EventTable


@pytest.fixture(scope="module")
def relation():
    return base_dataset(patients=8, cycles=2)


@pytest.fixture()
def loaded_table(relation):
    table = EventTable("Event", CHEMO_SCHEMA, indexes=["ID", "L"])
    table.insert_many(relation)
    return table


def test_insert_throughput(benchmark, relation):
    """Bulk insert with two hash indexes maintained."""
    def build():
        table = EventTable("Event", CHEMO_SCHEMA, indexes=["ID", "L"])
        table.insert_many(relation)
        return table

    table = benchmark(build)
    assert len(table) == len(relation)


def test_indexed_equality_query(benchmark, loaded_table):
    """Point query through the hash index."""
    result = benchmark(lambda: loaded_table.query()
                       .where("ID", "=", 1).where("L", "=", "P").execute())
    assert len(result) > 0


def test_unindexed_range_query(benchmark, loaded_table):
    """Predicate scan without index support."""
    result = benchmark(lambda: loaded_table.query()
                       .where("V", ">", 100.0).execute())
    assert len(result) > 0


def test_time_slice_scan(benchmark, loaded_table):
    """Time-range scan through the time index."""
    result = benchmark(lambda: list(loaded_table.scan(100, 400)))
    assert result


def test_match_over_store(benchmark, loaded_table):
    """End-to-end: SES match running straight off a stored table."""
    from repro.data import query_q1
    result = benchmark.pedantic(
        lambda: loaded_table.query().match(query_q1(), selection="accepted"),
        rounds=1, iterations=1)
    assert result.stats.events_read == len(loaded_table)
