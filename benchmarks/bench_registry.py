"""Pattern registry: shared admission pass vs N independent matchers.

The multi-tenant regime ``repro.registry`` exists for: 100+ distinct
live patterns over one noisy event stream.  The baseline is the repo's
own :class:`~repro.stream.multi.MultiPatternMatcher` — every event is
offered to every pattern's matcher, so the per-event cost is N filter
checks.  The registry evaluates the deduplicated predicate bank once
per batch and fans admission out through bitmasks, so cost follows the
number of *distinct predicates* instead.  The push pair carries the
≥2× claim ``python -m repro.bench`` also tracks as
``bench_registry_*``; equality of the per-pattern match sets is
asserted on every run.
"""

import pytest

from repro.bench.registry import registry_queries, registry_relation
from repro.lang import parse_pattern
from repro.registry import PatternRegistry
from repro.stream.multi import MultiPatternMatcher

N_PATTERNS = 125


@pytest.fixture(scope="module")
def patterns():
    return {f"p{i}": parse_pattern(text)
            for i, text in enumerate(registry_queries(N_PATTERNS))}


@pytest.fixture(scope="module")
def events():
    return list(registry_relation())


def _match_keys(matches):
    return sorted((frozenset((v, e.eid) for v, e in sub.bindings)
                   for sub in matches), key=sorted)


def _run_shared(patterns, events):
    registry = PatternRegistry()
    for name, pattern in patterns.items():
        registry.register(pattern, pattern_id=name)
    registry.push_many(events)
    registry.close()
    return {name: registry.matches_of(name) for name in patterns}


def _run_independent(patterns, events):
    matcher = MultiPatternMatcher(dict(patterns))
    matcher.push_many(events)
    matcher.close()
    return {name: matcher.matches(name) for name in patterns}


def test_register_all(benchmark, patterns):
    """Registration cost: plan reuse + predicate interning, per pattern."""

    def build():
        registry = PatternRegistry()
        for name, pattern in patterns.items():
            registry.register(pattern, pattern_id=name)
        return registry

    registry = benchmark(build)
    assert len(registry) == N_PATTERNS
    # The shared bank holds far fewer predicates than patterns.
    assert registry.predicate_count < N_PATTERNS / 10


def test_push_independent(benchmark, patterns, events):
    """Baseline: every event offered to every pattern's matcher."""
    matches = benchmark(_run_independent, patterns, events)
    assert sum(len(m) for m in matches.values()) > 0


def test_push_shared(benchmark, patterns, events):
    """One shared admission pass feeding all patterns (≥2× faster)."""
    matches = benchmark(_run_shared, patterns, events)
    assert sum(len(m) for m in matches.values()) > 0


def test_shared_matches_independent_and_speedup(patterns, events):
    """Match-set equality plus the headline ≥2× throughput claim."""
    import time

    start = time.perf_counter()
    independent = _run_independent(patterns, events)
    independent_seconds = time.perf_counter() - start
    start = time.perf_counter()
    shared = _run_shared(patterns, events)
    shared_seconds = time.perf_counter() - start

    for name in patterns:
        assert _match_keys(shared[name]) == _match_keys(independent[name]), (
            f"shared and independent runs disagree on {name}")
    speedup = independent_seconds / shared_seconds
    assert speedup >= 2.0, (
        f"shared admission pass only {speedup:.2f}x faster than "
        f"{N_PATTERNS} independent matchers")
