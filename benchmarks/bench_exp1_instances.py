"""Experiment 1 (Figure 11 and Table 1): SES automaton vs brute force.

Reproduces the paper's first experiment: the maximal number of
simultaneously active automaton instances for patterns

* P1 = ``(<{c,d,p,v,r,l},{b}>, Θ1, 264)`` — pairwise mutually exclusive;
* P2 = ``(<{c,d,p,v,r,l},{b}>, Θ2, 264)`` — all variables the same type;

with ``|V1|`` varied from 2 up to the profile's maximum, evaluated by the
single SES automaton and by the brute force set of ``|V1|!`` sequential
automata (Section 5.2).

Expected shape (paper Section 5.3): with P1 the brute force instance
count exceeds the SES count by a factor approaching ``(|V1|-1)!``
(Table 1); with P2 the SES automaton creates 9–20 % fewer instances.
The timing of each engine is captured by pytest-benchmark; the instance
counts are printed and asserted.
"""

import time

import pytest

from repro.baseline import BruteForceMatcher
from repro.bench import print_experiment1, run_experiment1
from repro.core.matcher import Matcher
from repro.data import experiment1_pattern
from repro.obs import Observability


def _var_counts(profile):
    return list(range(2, profile.exp1_max_vars + 1))


@pytest.mark.parametrize("n_vars", [2, 3, 4, 5, 6])
@pytest.mark.parametrize("exclusive", [True, False], ids=["P1", "P2"])
class TestEngines:
    def test_ses(self, benchmark, exp1_relation, profile, n_vars, exclusive):
        """Time the SES automaton on P1/P2 at each |V1|."""
        if n_vars > profile.exp1_max_vars:
            pytest.skip("beyond profile's variable budget")
        matcher = Matcher(experiment1_pattern(n_vars, exclusive=exclusive),
                          selection="accepted")
        result = benchmark.pedantic(matcher.run, args=(exp1_relation,),
                                    rounds=1, iterations=1)
        benchmark.extra_info["max_instances"] = (
            result.stats.max_simultaneous_instances)

    def test_brute_force(self, benchmark, exp1_relation, profile, n_vars,
                         exclusive):
        """Time the brute force baseline on P1/P2 at each |V1|."""
        if n_vars > profile.exp1_max_vars:
            pytest.skip("beyond profile's variable budget")
        matcher = BruteForceMatcher(
            experiment1_pattern(n_vars, exclusive=exclusive),
            use_filter=True, selection="accepted")
        result = benchmark.pedantic(matcher.run, args=(exp1_relation,),
                                    rounds=1, iterations=1)
        benchmark.extra_info["max_instances"] = (
            result.stats.max_simultaneous_instances)
        benchmark.extra_info["automata"] = matcher.automaton_count


def test_observability_overhead(exp1_relation, capsys):
    """Measure the cost of the repro.obs layer on the Experiment 1 hot path.

    Two shapes are asserted:

    * *disabled* instrumentation (the default) must be near-free — the
      zero-cost contract behind the ≤ 2 % runtime budget of the
      observability PR;
    * *enabled* ``--profile`` instrumentation is expected to cost real
      time (spans + histograms per event); its factor is printed so the
      overhead number in docs/observability.md stays honest.
    """
    pattern = experiment1_pattern(4, exclusive=True)

    def run_once(obs):
        matcher = Matcher(pattern, selection="accepted", obs=obs)
        start = time.perf_counter()
        result = matcher.run(exp1_relation)
        return result, time.perf_counter() - start

    baseline = profiled = 0.0
    rounds = 3
    for _ in range(rounds):  # interleave to cancel thermal/cache drift
        base_result, base_seconds = run_once(None)
        prof_result, prof_seconds = run_once(Observability())
        baseline += base_seconds
        profiled += prof_seconds
        assert (base_result.stats.max_simultaneous_instances
                == prof_result.stats.max_simultaneous_instances)

    factor = profiled / baseline
    with capsys.disabled():
        print(f"\nobservability overhead: baseline {baseline / rounds:.4f}s, "
              f"profiled {profiled / rounds:.4f}s ({factor:.2f}x)")
    # Enabled profiling may legitimately cost time, but an order of
    # magnitude would make --profile useless on real workloads.
    assert factor < 10


def test_flight_recorder_overhead(exp1_relation, capsys):
    """Measure the flight recorder's cost on the Experiment 1 hot path.

    The recorder rides the tracer hook (no extra branches for step
    records) plus one ``is not None`` guard per event for |Ω| sampling,
    so attached it should stay within a few percent of the bare run —
    the ≤ 5 % budget that makes it safe to leave on in production.  The
    factor is printed so the number in docs/observability.md stays
    honest; the assertion bound is looser to keep CI machines from
    flaking the build.
    """
    from repro.obs.flight import FlightRecorder

    pattern = experiment1_pattern(4, exclusive=True)

    def run_once(flight):
        executor = Matcher(pattern, selection="accepted").executor(
            flight=flight)
        start = time.perf_counter()
        result = executor.run(exp1_relation)
        return result, time.perf_counter() - start

    baseline = recorded = 0.0
    rounds = 3
    steps = 0
    for _ in range(rounds):  # interleave to cancel thermal/cache drift
        base_result, base_seconds = run_once(None)
        flight = FlightRecorder()
        rec_result, rec_seconds = run_once(flight)
        baseline += base_seconds
        recorded += rec_seconds
        steps = flight.recorded
        assert (base_result.stats.max_simultaneous_instances
                == rec_result.stats.max_simultaneous_instances)

    factor = recorded / baseline
    with capsys.disabled():
        print(f"\nflight recorder overhead: baseline "
              f"{baseline / rounds:.4f}s, recording {recorded / rounds:.4f}s "
              f"({factor:.2f}x, {steps} steps recorded)")
    assert steps > 0
    assert factor < 1.5


def test_figure11_and_table1(exp1_relation, profile, capsys):
    """Run the full sweep, print the paper-style tables, assert the shapes."""
    rows = run_experiment1(exp1_relation, max_vars=profile.exp1_max_vars)
    with capsys.disabled():
        print_experiment1(rows)

    p1 = {r["n_vars"]: r for r in rows if r["pattern"] == "P1"}
    p2 = {r["n_vars"]: r for r in rows if r["pattern"] == "P2"}

    # Figure 11: brute force dominates SES increasingly with |V1| under P1.
    top = profile.exp1_max_vars
    assert p1[top]["bf_instances"] > 10 * p1[top]["ses_instances"]
    ratios = [p1[n]["ratio"] for n in sorted(p1)]
    assert ratios == sorted(ratios), "BF/SES ratio must grow with |V1|"

    # Table 1: the ratio approaches (|V1|-1)!.
    for n, row in p1.items():
        if n >= 3:
            assert 0.5 * row["factorial"] <= row["ratio"] <= 1.5 * row["factorial"]

    # P2: SES produces fewer instances than BF, by a modest margin.
    for n, row in p2.items():
        assert row["ses_instances"] <= row["bf_instances"] * 1.05
