"""Plan cache: compile-once vs compile-per-call.

The ``repro.plan`` subsystem exists for the one-pattern / many-relations
workload: repeated ``match()`` calls should pay automaton construction,
trimming and prefilter compilation once, then hit the process-global
:class:`~repro.plan.cache.PlanCache` by canonical fingerprint.  These
benches measure the compile cost being amortised, the cache-hit fast
path itself, and the end-to-end ``match()`` loop both ways — the loop
pair is the ≥2× claim ``python -m repro.bench`` also tracks as
``bench_plan_cache_*``.
"""

import pytest

from repro.bench.plancache import plan_cache_relations
from repro.bench.scaling import scaling_pattern
from repro.plan import clear_plan_cache, compile, plan_cache

N_RELATIONS = 50


@pytest.fixture(scope="module")
def pattern():
    return scaling_pattern(5)


@pytest.fixture(scope="module")
def relations():
    return plan_cache_relations(N_RELATIONS)


def test_compile_uncached(benchmark, pattern):
    """Full compilation: automaton + trim + vectorized prefilters."""
    plan = benchmark(compile, pattern, cache=False)
    assert plan.fingerprint


def test_compile_cache_hit(benchmark, pattern):
    """The fast path: fingerprint + LRU lookup, no building."""
    compile(pattern)  # warm
    plan = benchmark(compile, pattern)
    assert plan is compile(pattern)


def test_match_many_relations_uncached(benchmark, pattern, relations):
    """``match()`` over many small relations, compiling per call."""

    def loop():
        return sum(len(compile(pattern, cache=False).match(r).matches)
                   for r in relations)

    total = benchmark(loop)
    assert total > 0


def test_match_many_relations_cached(benchmark, pattern, relations):
    """Same loop through the process-global plan cache (≥2× faster)."""
    clear_plan_cache()

    def loop():
        return sum(len(compile(pattern).match(r).matches)
                   for r in relations)

    total = benchmark(loop)
    assert total > 0
    stats = plan_cache().stats()
    assert stats["hits"] >= N_RELATIONS - 1
