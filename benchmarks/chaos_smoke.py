#!/usr/bin/env python
"""CI chaos smoke: a fixed fault plan must not change the answer.

Runs the supervised sharded stream matcher under a deterministic
:class:`repro.FaultPlan` — every shard killed once mid-stream, one
event poisoned — and checks the recovered run against the fault-free
serial reference:

* the kill-only scenario must produce *exactly* the serial match set
  (order-insensitive, no duplicates: exactly-once delivery);
* the poison scenario must quarantine exactly one event to the
  dead-letter file (with its flight dump) and still produce every
  match the healthy remainder of the stream supports.

On failure the evidence is left in the working directory for the CI
artifact upload: ``chaos-dead-letter.jsonl`` and
``chaos-flight-dump.json``.

Usage: PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

import json
import sys

from repro import (DeadLetterQueue, Event, FaultPlan, RestartPolicy,
                   SESPattern, Supervisor)
from repro.obs import Observability
from repro.parallel import ShardedStreamMatcher
from repro.stream import PartitionedContinuousMatcher

PATTERN = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)
WORKERS = 2


def make_events():
    events, ts = [], 0
    for _ in range(3):
        for key in range(6):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return events


def match_set(substitutions):
    return {frozenset(f"{var!r}/{event.eid}"
                      for var, event in sub.bindings)
            for sub in substitutions}


def serial_reference(events):
    matcher = PartitionedContinuousMatcher(PATTERN, partition_by="ID")
    reported = matcher.push_many(events)
    reported.extend(matcher.close())
    return reported


def run_supervised(events, faults, dead_letter):
    obs = Observability()
    supervisor = Supervisor(
        restart=RestartPolicy(max_restarts=5, backoff=0.01,
                              max_backoff=0.1),
        checkpoint_every=8, dead_letter=dead_letter, faults=faults)
    matcher = ShardedStreamMatcher(PATTERN, workers=WORKERS,
                                   partition_by="ID",
                                   supervisor=supervisor,
                                   observability=obs)
    with matcher:
        matcher.push_many(events)
    return matcher, supervisor, obs


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main():
    events = make_events()
    expected = match_set(serial_reference(events))
    status = 0

    # Scenario 1: kill each shard once, mid-window.
    dead_letter = DeadLetterQueue()
    faults = FaultPlan().kill(0, 7).kill(1, 5, mode="exit")
    matcher, supervisor, obs = run_supervised(events, faults, dead_letter)
    got = match_set(matcher.matches)
    print(f"kill-each-shard-once: {len(matcher.matches)} matches, "
          f"{supervisor.restarts_total} restarts, "
          f"health={matcher.health()['status']}")
    if got != expected:
        status |= fail(f"kill scenario diverged from serial reference "
                       f"(missing={len(expected - got)}, "
                       f"extra={len(got - expected)})")
    if len(matcher.matches) != len(expected):
        status |= fail("kill scenario delivered duplicate matches")
    if supervisor.restarts_total != 2:
        status |= fail(f"expected 2 restarts, saw {supervisor.restarts_total}")

    # Scenario 2: one poisoned event must be quarantined, the rest of
    # the stream must still match.
    dead_letter = DeadLetterQueue()
    matcher, supervisor, obs = run_supervised(
        events, FaultPlan().corrupt(0, 4), dead_letter)
    print(f"poison-event: {len(dead_letter)} quarantined, "
          f"{len(matcher.matches)} matches, "
          f"health={matcher.health()['status']}")
    dead_letter.write_jsonl("chaos-dead-letter.jsonl")
    if len(dead_letter) != 1:
        status |= fail(f"expected 1 quarantined event, saw "
                       f"{len(dead_letter)}")
    else:
        entry = dead_letter.entries[0]
        if entry.flight_dump is not None:
            with open("chaos-flight-dump.json", "w",
                      encoding="utf-8") as handle:
                json.dump(entry.flight_dump, handle, default=str)
        else:
            status |= fail("quarantined event carried no flight dump")
        survivors = [e for e in events if e.eid != entry.event.eid]
        if match_set(matcher.matches) != match_set(
                serial_reference(survivors)):
            status |= fail("poison scenario lost matches from the "
                           "healthy stream")
        quarantined = obs.snapshot().get("ses_quarantined_events", {})
        if quarantined.get("value") != 1:
            status |= fail(f"ses_quarantined_events = "
                           f"{quarantined.get('value')!r}, expected 1")

    print("chaos smoke:", "FAILED" if status else "OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
