"""Ablation X1: automaton construction cost.

The SES automaton for an event set pattern with ``|V1| = n`` variables
has ``2^n`` states (Section 4.2.1), so construction is exponential in the
set size while *execution* is what the paper's theorems bound.  This
bench quantifies the build cost across set sizes and pattern shapes to
confirm construction stays negligible at query-compile time for the
set sizes the paper evaluates (n ≤ 6).
"""

import pytest

from repro.automaton.builder import build_automaton
from repro.data import experiment1_pattern, query_q1
from repro.lang import parse_pattern


@pytest.mark.parametrize("n_vars", [2, 3, 4, 5, 6])
def test_build_experiment1_automaton(benchmark, n_vars):
    """Build the (<{c,...},{b}>, Θ1, 264) automaton."""
    pattern = experiment1_pattern(n_vars, exclusive=True)
    automaton = benchmark(build_automaton, pattern)
    assert len(automaton.states) == 2 ** n_vars + 1


def test_build_query_q1(benchmark):
    """Build the running example's automaton (Figure 5)."""
    pattern = query_q1()
    automaton = benchmark(build_automaton, pattern)
    assert len(automaton.states) == 9
    assert len(automaton.transitions) == 17


def test_parse_and_compile_dsl(benchmark):
    """Full front end: parse the PERMUTE query text and build the pattern."""
    text = """
        PATTERN PERMUTE(c, p+, d) THEN b
        WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
          AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
        WITHIN 264 HOURS
    """
    pattern = benchmark(parse_pattern, text)
    assert pattern == query_q1()
