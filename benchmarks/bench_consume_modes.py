"""Ablation X5: greedy (Algorithm 2) vs exhaustive (Definition 2) matching.

Quantifies the price of declarative exactness: the exhaustive mode keeps
the pre-consumption instance alive at every step (skip-till-any-match),
so its instance population — and with it runtime — grows much faster
than greedy's.  Expected shape: identical match sets on well-joined
patterns like Query Q1, with a multi-× instance and time overhead that
widens with the window size.
"""

import pytest

from repro.core.matcher import Matcher
from repro.data import base_dataset, query_q1


@pytest.fixture(scope="module")
def relation():
    return base_dataset(patients=6, cycles=2)


@pytest.mark.parametrize("mode", ["greedy", "exhaustive"])
def test_mode_runtime(benchmark, relation, mode):
    """Time Query Q1 under each consumption mode."""
    matcher = Matcher(query_q1(), selection="accepted", consume_mode=mode)
    result = benchmark.pedantic(matcher.run, args=(relation,),
                                rounds=1, iterations=1)
    benchmark.extra_info["max_instances"] = (
        result.stats.max_simultaneous_instances)
    benchmark.extra_info["accepted"] = len(result.accepted)


def test_exactness_price(relation, capsys):
    """Exhaustive explores a superset at a measurable instance cost."""
    greedy = Matcher(query_q1(), selection="accepted").run(relation)
    exhaustive = Matcher(query_q1(), selection="accepted",
                         consume_mode="exhaustive").run(relation)
    assert set(greedy.accepted) <= set(exhaustive.accepted)
    assert (exhaustive.stats.max_simultaneous_instances
            >= greedy.stats.max_simultaneous_instances)
    with capsys.disabled():
        print(f"\ngreedy maxΩ={greedy.stats.max_simultaneous_instances} "
              f"exhaustive maxΩ={exhaustive.stats.max_simultaneous_instances} "
              f"({exhaustive.stats.max_simultaneous_instances / max(1, greedy.stats.max_simultaneous_instances):.1f}x)")


def test_same_selected_matches_on_q1(relation):
    """On the well-joined Q1, both modes select the same matches."""
    greedy = Matcher(query_q1()).run(relation)
    exhaustive = Matcher(query_q1(), consume_mode="exhaustive").run(relation)
    assert greedy.matches == exhaustive.matches
