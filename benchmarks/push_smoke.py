"""CI smoke for durable push delivery (docs/serving.md).

Drives the real CLI end to end: ``repro serve --subscribe`` with a
delivery WAL, a ``repro tail`` subscriber writing a transcript, a
``repro push`` producer — then SIGKILLs the server mid-stream, restarts
it on the same port against the same WAL, re-feeds the stream, and
drains gracefully.  The subscriber must end with *exactly* the
fault-free match set: resumed via ``Last-Event-ID``, no gap, no
duplicate.

Leaves behind (uploaded by CI on failure):
  push-smoke-transcript.jsonl   every event the subscriber received
  push-smoke-cursor             the tail's persisted resume cursor
  push-smoke-serve{1,2}.log     both server generations' output
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

from repro import Event
from repro.core.relation import EventRelation
from repro.lang import parse_query_spec
from repro.obs.lineage import match_id
from repro.plan.cache import compile as compile_plan
from repro.registry import PatternRegistry
from repro.storage import save_relation

QUERY = ("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND b.L = 'C' "
         "AND a.ID = b.ID WITHIN 10")
PAIRS = 40

TRANSCRIPT = "push-smoke-transcript.jsonl"
CURSOR = "push-smoke-cursor"


def stream():
    events = []
    for i in range(PAIRS):
        base = 100 + 20 * i
        events.append(Event(ts=base, attrs={"L": "B", "ID": i},
                            eid=f"b{i}"))
        events.append(Event(ts=base + 1, attrs={"L": "C", "ID": i},
                            eid=f"c{i}"))
    return events


def expected_ids(events):
    registry = PatternRegistry()
    pattern, aggregate = parse_query_spec(QUERY)
    registry.register(compile_plan(pattern, aggregate=aggregate))
    registry.push_many(events)
    registry.close()
    return {match_id(sub) for sub in registry.matches}


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise SystemExit(f"timed out waiting for {what}")


def start_serve(port, generation):
    log = open(f"push-smoke-serve{generation}.log", "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data", "push-smoke-primer.csv", "--query", QUERY,
         "--listen", "127.0.0.1:0",
         "--subscribe", f"127.0.0.1:{port}",
         "--delivery-wal", "push-smoke-delivery.jsonl",
         "--heartbeat", "0.5", "--drain-grace", "10"],
        stdout=log, stderr=subprocess.STDOUT)
    wait_for(lambda: "serving push endpoint on "
             in open(f"push-smoke-serve{generation}.log").read(),
             what=f"serve generation {generation} startup")
    return process


def transcript_matches():
    try:
        lines = open(TRANSCRIPT).read().splitlines()
    except OSError:
        return []
    out = []
    for line in lines:
        item = json.loads(line)
        if item.get("event") == "match":
            out.append((int(item["id"]), item["data"]["match_id"]))
    return out


def main():
    events = stream()
    expected = expected_ids(events)
    assert len(expected) == PAIRS, len(expected)

    save_relation(EventRelation(
        [Event(ts=0, attrs={"L": "Z", "ID": -1}, eid="z0"),
         Event(ts=1, attrs={"L": "Z", "ID": -1}, eid="z1")],
        name="primer"), "push-smoke-primer.csv")
    save_relation(EventRelation(events[:PAIRS], name="half"),
                  "push-smoke-half.csv")
    save_relation(EventRelation(events, name="full"),
                  "push-smoke-full.csv")

    port = free_port()
    serve = start_serve(port, 1)
    tail = subprocess.Popen(
        [sys.executable, "-m", "repro", "tail",
         "--server", f"127.0.0.1:{port}", "--resume=-1",
         "--out", TRANSCRIPT, "--resume-file", CURSOR,
         "--id", "ci-smoke", "--reconnect-delay", "0.1",
         "--max-reconnects", "400"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    serve2 = None
    try:
        def push(data):
            subprocess.run(
                [sys.executable, "-m", "repro", "push",
                 "--server", f"127.0.0.1:{port}", "--data", data],
                check=True, stdout=subprocess.DEVNULL)

        push("push-smoke-half.csv")
        wait_for(lambda: len(transcript_matches()) >= 5,
                 what="live matches before the kill")

        os.kill(serve.pid, signal.SIGKILL)
        serve.wait(timeout=10)
        print(f"killed serve generation 1 with "
              f"{len(transcript_matches())} matches delivered")

        serve2 = start_serve(port, 2)
        push("push-smoke-full.csv")       # re-feed: WAL dedup absorbs it
        wait_for(lambda: len({m for _, m in transcript_matches()})
                 >= PAIRS - 1, what="resumed delivery after restart")

        from repro.net import request_quit
        request_quit("127.0.0.1", port)
        assert tail.wait(timeout=30) == 0, "tail did not exit cleanly"
        assert serve2.wait(timeout=30) == 0, "serve did not drain cleanly"
    finally:
        for process in (serve, serve2, tail):
            if process is not None and process.poll() is None:
                process.kill()

    received = transcript_matches()
    ids = [mid for _, mid in received]
    seqs = [seq for seq, _ in received]
    missing = expected - set(ids)
    extra = set(ids) - expected
    assert not missing, f"match loss across restart: {missing}"
    assert not extra, f"unexpected matches: {extra}"
    assert len(ids) == len(set(ids)), "duplicate delivery across restart"
    assert seqs == sorted(seqs), "cursors went backwards"
    cursor = int(open(CURSOR).read().strip())
    assert cursor == max(seqs), (cursor, max(seqs))
    print(f"push smoke OK: {len(ids)} matches delivered exactly once "
          f"across SIGKILL + resume (final cursor {cursor})")


if __name__ == "__main__":
    main()
