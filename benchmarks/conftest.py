"""Shared fixtures for the benchmark suite.

The benchmarks default to the ``quick`` scale profile so that
``pytest benchmarks/ --benchmark-only`` completes in minutes; export
``REPRO_BENCH_PROFILE=default`` (or ``large``) for bigger runs, and see
``python -m repro.bench`` for the full paper-style report.
"""

import os

import pytest

from repro.bench import resolve_profile


@pytest.fixture(scope="session")
def profile():
    """The active scale profile (defaults to ``quick`` for benchmarks)."""
    return resolve_profile(os.environ.get("REPRO_BENCH_PROFILE", "quick"))


@pytest.fixture(scope="session")
def exp1_relation(profile):
    """The Experiment 1 relation."""
    return profile.exp1_relation()


@pytest.fixture(scope="session")
def exp23_base(profile):
    """The D1 base relation for Experiments 2 and 3."""
    return profile.exp23_base()


@pytest.fixture(scope="session")
def exp23_datasets(profile, exp23_base):
    """D1..Dn keyed by duplication factor."""
    from repro.data import duplicated_datasets
    return duplicated_datasets(exp23_base, profile.factors)
