"""Ablation X6: streaming throughput.

Measures events/second through the continuous matchers — single pattern,
multi-pattern shared pass, and per-key partitioned — over the synthetic
chemotherapy stream.  Expected shape: partitioned streaming sustains the
highest rate on join-partitionable patterns (small per-key populations);
the multi-pattern matcher costs roughly the sum of its patterns.
"""

import pytest

from repro.data import base_dataset, pattern_p3, query_q1
from repro.stream import (ContinuousMatcher, MultiPatternMatcher,
                          PartitionedContinuousMatcher, from_relation)


@pytest.fixture(scope="module")
def relation():
    return base_dataset(patients=8, cycles=2)


def _drain(matcher, relation):
    matcher.push_many(from_relation(relation))
    matcher.close()
    return matcher


def test_single_pattern_stream(benchmark, relation):
    matcher = benchmark.pedantic(
        lambda: _drain(ContinuousMatcher(query_q1()), relation),
        rounds=1, iterations=1)
    assert len(matcher.matches) > 0
    benchmark.extra_info["events"] = len(relation)
    benchmark.extra_info["matches"] = len(matcher.matches)


def test_partitioned_stream(benchmark, relation):
    matcher = benchmark.pedantic(
        lambda: _drain(PartitionedContinuousMatcher(query_q1()), relation),
        rounds=1, iterations=1)
    assert len(matcher.matches) > 0
    benchmark.extra_info["partitions"] = len(matcher.partitions)


def test_heavy_pattern_partitioned_stream(benchmark, relation):
    """P3 (group variable, non-exclusive) is where partitioning pays."""
    matcher = benchmark.pedantic(
        lambda: _drain(PartitionedContinuousMatcher(pattern_p3()), relation),
        rounds=1, iterations=1)
    benchmark.extra_info["active_end"] = matcher.active_instances


def test_multi_pattern_stream(benchmark, relation):
    patterns = {"q1": query_q1(), "p3": pattern_p3()}
    matcher = benchmark.pedantic(
        lambda: _drain(MultiPatternMatcher(patterns), relation),
        rounds=1, iterations=1)
    assert len(matcher.matches("q1")) > 0
