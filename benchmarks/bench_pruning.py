"""Ablation X7: C-CEP-style deadline pruning.

Compares the plain Algorithm 1 executor against
:class:`~repro.automaton.pruning.PruningExecutor`, which drops instances
that provably cannot complete before their window closes (temporal
unsatisfiability, after the C-CEP idea in the paper's related work).
Expected shape: identical accepted buffers, a measurable number of
pruned instances on multi-phase patterns, and a peak Ω never above the
plain executor's.
"""

import pytest

from repro import SESPattern
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.automaton.filtering import EventFilter
from repro.automaton.pruning import PruningExecutor
from repro.data import base_dataset, query_q1

#: A three-phase pattern with a tight window: pruning-friendly.
TIGHT = SESPattern(
    sets=[["c"], ["p+"], ["b"]],
    conditions=["c.L = 'C'", "p.L = 'P'", "b.L = 'B'",
                "c.ID = p.ID", "c.ID = b.ID", "p.ID = b.ID"],
    tau=120,
)


@pytest.fixture(scope="module")
def relation():
    return base_dataset(patients=8, cycles=2)


@pytest.mark.parametrize("variant", ["plain", "pruning"])
@pytest.mark.parametrize("which", ["q1", "tight"])
def test_pruning_runtime(benchmark, relation, variant, which):
    pattern = query_q1() if which == "q1" else TIGHT
    automaton = build_automaton(pattern)
    event_filter = EventFilter(pattern)
    if variant == "plain":
        executor = SESExecutor(automaton, event_filter=event_filter,
                               selection="accepted")
    else:
        executor = PruningExecutor(pattern, automaton,
                                   event_filter=event_filter,
                                   selection="accepted")
    result = benchmark.pedantic(executor.run, args=(relation,),
                                rounds=1, iterations=1)
    benchmark.extra_info["max_instances"] = (
        result.stats.max_simultaneous_instances)
    if variant == "pruning":
        benchmark.extra_info["pruned"] = executor.pruned_instances


def test_pruning_invariants(relation, capsys):
    """Same accepted buffers; never a larger population; prunes something."""
    automaton = build_automaton(TIGHT)
    plain = SESExecutor(automaton, selection="accepted").run(relation)
    executor = PruningExecutor(TIGHT, automaton, selection="accepted")
    pruned = executor.run(relation)
    assert sorted(map(hash, plain.accepted)) == \
        sorted(map(hash, pruned.accepted))
    assert (pruned.stats.max_simultaneous_instances
            <= plain.stats.max_simultaneous_instances)
    with capsys.disabled():
        print(f"\npruned {executor.pruned_instances} doomed instances; "
              f"peak Ω {plain.stats.max_simultaneous_instances} -> "
              f"{pruned.stats.max_simultaneous_instances}")
