"""Ablation X2: instance indexing and partitioned execution.

The paper's future work points to runtime optimizations, including
indexing techniques for automaton instances [11].  This bench compares

* the plain Algorithm 1 executor,
* the state-indexed executor (constant conditions evaluated once per
  state group per event), and
* partitioned execution on the patient attribute,

on the group-variable pattern P3.  Expected shape: indexing pays off
when the pre-filter is off (it subsumes most of the filter's savings);
partitioning wins by a large margin because per-patient instance
populations are small.  Note partitioned execution accepts a *superset*
of Algorithm 1's buffers (it is immune to cross-partition greedy
hijacking; see repro.automaton.optimizations).
"""

import pytest

from repro.automaton import IndexedExecutor, PartitionedMatcher
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.automaton.filtering import EventFilter
from repro.data import pattern_p3


@pytest.mark.parametrize("filtered", [False, True], ids=["wo-filter", "with-filter"])
class TestExecutorVariants:
    def _filter(self, filtered):
        return EventFilter(pattern_p3()) if filtered else None

    def test_plain(self, benchmark, exp23_base, filtered):
        automaton = build_automaton(pattern_p3())
        executor = SESExecutor(automaton, event_filter=self._filter(filtered),
                               selection="accepted")
        result = benchmark.pedantic(executor.run, args=(exp23_base,),
                                    rounds=1, iterations=1)
        benchmark.extra_info["max_instances"] = (
            result.stats.max_simultaneous_instances)

    def test_indexed(self, benchmark, exp23_base, filtered):
        automaton = build_automaton(pattern_p3())
        executor = IndexedExecutor(automaton, event_filter=self._filter(filtered),
                                   selection="accepted")
        result = benchmark.pedantic(executor.run, args=(exp23_base,),
                                    rounds=1, iterations=1)
        benchmark.extra_info["max_instances"] = (
            result.stats.max_simultaneous_instances)

    def test_partitioned(self, benchmark, exp23_base, filtered):
        matcher = PartitionedMatcher(pattern_p3(), use_filter=filtered,
                                     selection="accepted")
        result = benchmark.pedantic(matcher.run, args=(exp23_base,),
                                    rounds=1, iterations=1)
        benchmark.extra_info["max_instances"] = (
            result.stats.max_simultaneous_instances)


def test_equivalences(exp23_base):
    """Indexed execution is exact; partitioned execution is a superset."""
    automaton = build_automaton(pattern_p3())
    plain = SESExecutor(automaton, selection="accepted").run(exp23_base)
    indexed = IndexedExecutor(automaton, selection="accepted").run(exp23_base)
    partitioned = PartitionedMatcher(pattern_p3(),
                                     selection="accepted").run(exp23_base)
    assert sorted(map(hash, plain.accepted)) == sorted(map(hash, indexed.accepted))
    assert set(plain.accepted) <= set(partitioned.accepted)
    assert (partitioned.stats.max_simultaneous_instances
            < plain.stats.max_simultaneous_instances)
