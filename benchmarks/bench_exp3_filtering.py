"""Experiment 3 (Figure 13): effect of event filtering on runtime.

Reproduces the paper's third experiment: execution time of

* P5 = ``(<{c,d,p+},{b}>, Θ1, 264)`` — mutually exclusive conditions;
* P6 = ``(<{c,d,p+},{b}>, Θ2, 264)`` — same-type conditions;

on D1..D5, with and without the Section 4.5 pre-filter.  The paper
reports an order-of-magnitude speedup on the hospital data set (where
the vast majority of events are irrelevant to the pattern); the synthetic
relation's irrelevant-event fraction is lower, so the expected shape here
is a consistent multi-× speedup for both patterns at every window size,
growing with the irrelevant fraction (see EXPERIMENTS.md).
"""

import pytest

from repro.bench import print_experiment3, run_experiment3
from repro.core.matcher import Matcher
from repro.data import pattern_p5, pattern_p6


@pytest.mark.parametrize("factor", [1, 2, 3])
@pytest.mark.parametrize("which", ["P5", "P6"])
@pytest.mark.parametrize("filtered", [False, True], ids=["wo-filter", "with-filter"])
def test_filtering_run(benchmark, exp23_datasets, factor, which, filtered):
    """Time one (pattern, dataset, filter) cell of Figure 13."""
    if factor not in exp23_datasets:
        pytest.skip("beyond profile's duplication budget")
    relation = exp23_datasets[factor]
    pattern = pattern_p5() if which == "P5" else pattern_p6()
    matcher = Matcher(pattern, use_filter=filtered, filter_mode="paper",
                      selection="accepted")
    result = benchmark.pedantic(matcher.run, args=(relation,),
                                rounds=1, iterations=1)
    benchmark.extra_info["events_filtered"] = result.stats.events_filtered


def test_figure13(exp23_base, profile, capsys):
    """Run the sweep, print Figure 13's series, assert the speedups."""
    rows = run_experiment3(exp23_base, factors=profile.factors)
    with capsys.disabled():
        print_experiment3(rows)
    for row in rows:
        assert row["p5_speedup"] > 1.3, (
            f"filtering must speed up P5 on {row['dataset']}")
        assert row["p6_speedup"] > 1.3, (
            f"filtering must speed up P6 on {row['dataset']}")
        assert row["p5_filtered_events"] > 0
        assert row["p6_filtered_events"] > 0


def test_filtering_does_not_change_matches(exp23_base):
    """Section 4.5: the filter changes iteration counts, not results."""
    pattern = pattern_p6()
    with_filter = Matcher(pattern, use_filter=True,
                          selection="accepted").run(exp23_base)
    without = Matcher(pattern, use_filter=False,
                      selection="accepted").run(exp23_base)
    assert sorted(map(hash, with_filter.accepted)) == \
        sorted(map(hash, without.accepted))
    assert (with_filter.stats.max_simultaneous_instances
            == without.stats.max_simultaneous_instances)
