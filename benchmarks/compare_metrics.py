#!/usr/bin/env python
"""Gate on benchmark regressions between two metric snapshots.

Usage::

    python benchmarks/compare_metrics.py baseline.jsonl head.jsonl \
        [--threshold 0.25] [--min-seconds 0.05]

Both inputs are JSON-lines snapshots written by
``python -m repro.bench <profile> --metrics-out``.  Prints a comparison
table and exits 1 if any tracked metric (``*_seconds`` lower-better;
``*_events_per_second`` / ``*_throughput`` / ``*_speedup``
higher-better) regressed by more than the threshold.  See
``repro.bench.compare`` for the rules; CI's ``benchmark-gate`` job is
the canonical caller.
"""

import argparse
import sys
from pathlib import Path

try:
    from repro.bench.compare import (DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD,
                                     compare_snapshots, format_report,
                                     regressions)
    from repro.obs import read_jsonl
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.bench.compare import (DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD,
                                     compare_snapshots, format_report,
                                     regressions)
    from repro.obs import read_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two benchmark metric snapshots; exit 1 on "
                    "regression.")
    parser.add_argument("baseline", type=Path,
                        help="baseline snapshot (e.g. from main)")
    parser.add_argument("head", type=Path,
                        help="head snapshot (e.g. from the PR)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fractional regression that fails the gate "
                             "(default: %(default)s)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="ignore timings below this noise floor "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    deltas = compare_snapshots(read_jsonl(args.baseline),
                               read_jsonl(args.head),
                               threshold=args.threshold,
                               min_seconds=args.min_seconds)
    print(format_report(deltas, threshold=args.threshold))
    return 1 if regressions(deltas) else 0


if __name__ == "__main__":
    raise SystemExit(main())
