"""Ablation X3: query language front-end throughput.

Measures the lexer, parser, and compiler separately so front-end cost can
be attributed.  Parsing happens once per query, so these numbers only
matter for workloads with very high query churn; they confirm the front
end is microseconds-scale.
"""

from repro.lang import compile_query, parse, parse_pattern, tokenize

Q1_TEXT = """
    PATTERN PERMUTE(c, p+, d) THEN b
    WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
      AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
    WITHIN 264 HOURS
"""

WIDE_TEXT = ("PATTERN PERMUTE(" + ", ".join(f"v{i}" for i in range(12)) + ")"
             + " WHERE " + " AND ".join(f"v{i}.kind = 'K{i}'" for i in range(12))
             + " WITHIN 100")


def test_tokenize_q1(benchmark):
    tokens = benchmark(tokenize, Q1_TEXT)
    assert tokens[-1].value is None  # EOF


def test_parse_q1(benchmark):
    query = benchmark(parse, Q1_TEXT)
    assert len(query.sets) == 2


def test_compile_q1(benchmark):
    query = parse(Q1_TEXT)
    pattern = benchmark(compile_query, query)
    assert pattern.tau == 264


def test_end_to_end_q1(benchmark):
    pattern = benchmark(parse_pattern, Q1_TEXT)
    assert len(pattern.conditions) == 7


def test_end_to_end_wide_pattern(benchmark):
    pattern = benchmark(parse_pattern, WIDE_TEXT)
    assert len(pattern.variables) == 12
